"""Benchmark: the struct-of-arrays fleet fast path must actually be fast.

Three gates for :mod:`repro.fleet` (the PR's acceptance criteria):

* **scan microbench** -- one (load, name)-rank argmin over a 1k-worker
  mirror must beat the pure-Python ``min(dict, key=...)`` scan it
  replaces by >= 5x (min-of-N timing), while picking the exact same
  winners round for round;
* **planning speedup** -- BAR and Spark upfront planning over a
  1k-worker fleet must run >= 3x faster with the fast path on, and the
  resulting plans/load tables must be *identical* (same dicts, same
  float bits) -- speed is worthless if it changes a single placement;
* **full cell** -- a 1k-worker end-to-end cell with the fast path on
  completes and reports its wall time (informational; macro timings are
  too machine-sensitive to gate).
"""

import json
import time

import numpy as np
from conftest import once

from repro.cluster.profiles import WorkerProfile
from repro.cluster.worker_spec import WorkerSpec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.fleet import LoadTable
from repro.schedulers.bar import BARMasterPolicy
from repro.schedulers.registry import make_scheduler
from repro.schedulers.spark import SparkMasterPolicy
from repro.workload.generators import job_config_by_name
from repro.workload.job import Job

FLEET = 1_000
SCAN_ROUNDS = 2_000
PLAN_JOBS = 3_000
REPOS = 500
#: Acceptance floors (the measured ratios run well above these; the
#: slack absorbs CI timer noise).
SCAN_SPEEDUP_FLOOR = 5.0
PLAN_SPEEDUP_FLOOR = 3.0


class _FakeMaster:
    """Just enough master surface for upfront planning: the fleet name
    list, the per-run RNG (Spark's executor shuffle) and the ``fleet``
    attribute whose presence switches the fast path on."""

    def __init__(self, workers, soa, seed=7):
        self.worker_names = list(workers)
        self.fleet = object() if soa else None
        self.rng = np.random.default_rng(seed)


def _worker_names():
    return [f"w{i:04d}" for i in range(FLEET)]


def _cache_view(workers):
    """A quarter of the fleet holds three repositories each."""
    view = {}
    for index, name in enumerate(workers):
        if index % 4 == 0:
            view[name] = {f"r{(index * 3 + k) % REPOS:04d}" for k in range(3)}
    return view


def _plan_jobs():
    jobs = []
    for i in range(PLAN_JOBS):
        if i % 5 == 0:
            jobs.append(Job(job_id=f"j{i:05d}", task="search", base_compute_s=0.5))
        else:
            jobs.append(
                Job(
                    job_id=f"j{i:05d}",
                    task="analyse",
                    repo_id=f"r{i % REPOS:04d}",
                    size_mb=10.0 + (i % 17),
                    base_compute_s=0.25,
                )
            )
    return jobs


def _best_of(fn, rounds):
    best = float("inf")
    value = None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


# -- scan microbench -------------------------------------------------------


def _python_scan():
    load = {name: 0.0 for name in _worker_names()}
    picks = []
    for i in range(SCAN_ROUNDS):
        name = min(load, key=lambda n: (load[n], n))
        load[name] += 1.0 + (i % 5)
        picks.append(name)
    return load, picks


def _soa_scan():
    table = LoadTable()
    table.reset({name: 0.0 for name in _worker_names()})
    picks = []
    for i in range(SCAN_ROUNDS):
        name = table.argmin_name()
        table.add(name, 1.0 + (i % 5))
        picks.append(name)
    return table, picks


def fleet_scan_speedup():
    (load, python_picks), python_s = _best_of(_python_scan, 3)
    (table, soa_picks), soa_s = _best_of(_soa_scan, 3)
    assert soa_picks == python_picks, "the mirror must pick identical winners"
    assert {name: table.get(name) for name in load} == load
    return python_s, soa_s


def test_bench_fleet_scan(benchmark):
    python_s, soa_s = once(benchmark, fleet_scan_speedup)
    speedup = python_s / soa_s
    print()
    print(
        json.dumps(
            {
                "workers": FLEET,
                "rounds": SCAN_ROUNDS,
                "python_best_s": python_s,
                "soa_best_s": soa_s,
                "speedup": speedup,
            },
            indent=2,
            sort_keys=True,
        )
    )
    assert speedup >= SCAN_SPEEDUP_FLOOR, f"fleet scan speedup only {speedup:.1f}x"


# -- upfront planning ------------------------------------------------------


def _plan_bar(soa):
    workers = _worker_names()
    policy = BARMasterPolicy(max_adjustments=100)
    policy.bind(_FakeMaster(workers, soa=soa))
    policy.cache_view = _cache_view(workers)
    policy.speed_view = {
        name: (10.0 + (i % 7), 60.0 + (i % 11), 1.0 + 0.01 * (i % 5), 0.2)
        for i, name in enumerate(workers)
    }
    policy.on_upfront_jobs(_plan_jobs())
    return policy


def _plan_spark(soa):
    workers = _worker_names()
    policy = SparkMasterPolicy()
    policy.bind(_FakeMaster(workers, soa=soa))
    policy.cache_view = _cache_view(workers)
    policy.on_upfront_jobs(_plan_jobs())
    return policy


def planning_speedup():
    bar_off, bar_off_s = _best_of(lambda: _plan_bar(soa=False), 2)
    bar_on, bar_on_s = _best_of(lambda: _plan_bar(soa=True), 2)
    spark_off, spark_off_s = _best_of(lambda: _plan_spark(soa=False), 2)
    spark_on, spark_on_s = _best_of(lambda: _plan_spark(soa=True), 2)
    # Identity first: same placements, same float bits, same counts.
    assert bar_on._plan == bar_off._plan
    assert bar_on._load == bar_off._load
    assert bar_on.adjustments == bar_off.adjustments
    assert spark_on._plan == spark_off._plan
    assert spark_on._planned_counts == spark_off._planned_counts
    return {
        "bar": (bar_off_s, bar_on_s),
        "spark": (spark_off_s, spark_on_s),
    }


def test_bench_planning_speedup(benchmark):
    timings = once(benchmark, planning_speedup)
    report = {
        name: {
            "scalar_best_s": off_s,
            "soa_best_s": on_s,
            "speedup": off_s / on_s,
        }
        for name, (off_s, on_s) in timings.items()
    }
    print()
    print(json.dumps(report, indent=2, sort_keys=True))
    for name, row in report.items():
        assert row["speedup"] >= PLAN_SPEEDUP_FLOOR, (
            f"{name} planning speedup only {row['speedup']:.1f}x over "
            f"{FLEET} workers / {PLAN_JOBS} jobs"
        )


# -- 1k-worker full cell ---------------------------------------------------


def _profile_1k():
    specs = tuple(
        WorkerSpec(
            name=f"w{i:04d}",
            network_mbps=10.0 * (1.0 + 0.05 * ((i % 11) - 5) / 5.0),
            rw_mbps=60.0,
        )
        for i in range(FLEET)
    )
    return WorkerProfile("bench-1k", specs)


def full_cell_1k():
    _corpus, stream = job_config_by_name("80%_large").build(seed=11)
    runtime = WorkflowRuntime(
        profile=_profile_1k(),
        stream=stream,
        scheduler=make_scheduler("spark"),
        config=EngineConfig(seed=11, trace=False),
    )
    start = time.perf_counter()
    result = runtime.run()
    return result, time.perf_counter() - start, runtime.fleet


def test_bench_full_cell_1k(benchmark):
    result, wall_s, fleet = once(benchmark, full_cell_1k)
    print()
    print(
        json.dumps(
            {
                "workers": FLEET,
                "wall_s": wall_s,
                "jobs_completed": result.jobs_completed,
                "makespan_s": result.makespan_s,
            },
            indent=2,
            sort_keys=True,
        )
    )
    assert fleet is not None, "fast path should be on by default"
    assert result.jobs_completed > 0
