"""Engine microbenchmarks: DES kernel, pipe, broker and full-run throughput.

Not a paper figure -- these track the *simulator's* own performance so
regressions in the substrate are visible (the experiment matrices run
hundreds of simulations; kernel slowdowns multiply).
"""

import numpy as np

from repro.net.bandwidth import FairSharePipe
from repro.net.broker import Broker
from repro.sim import Simulator, Store, TimerHandle
from repro.experiments.runner import CellSpec, run_cell


def test_bench_kernel_timeout_throughput(benchmark):
    """Schedule-and-run 50k timeouts."""

    def run():
        sim = Simulator()
        for index in range(50_000):
            sim.timeout(float(index % 997) / 10.0)
        sim.run()
        return sim.now

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result > 0


def test_bench_timer_handle_churn(benchmark):
    """20k direct-callback timer arm/re-arm/fire cycles on one handle."""

    def run():
        sim = Simulator()
        fired = [0]
        handle = TimerHandle()

        def tick():
            fired[0] += 1
            if fired[0] < 20_000:
                # Re-arm twice: the first occurrence goes stale and must
                # be skipped by the generation check (the lazy-deletion
                # hot path of the fluid network model).
                sim.call_later(0.001, tick, handle=handle)
                sim.call_later(0.002, tick, handle=handle)

        sim.call_later(0.001, tick, handle=handle)
        sim.run()
        return fired[0]

    assert benchmark.pedantic(run, rounds=3, iterations=1) == 20_000


def test_bench_kernel_process_pingpong(benchmark):
    """Two processes exchanging 10k items through a Store."""

    def run():
        sim = Simulator()
        ping, pong = Store(sim), Store(sim)

        def left(sim):
            for index in range(10_000):
                yield ping.put(index)
                yield pong.get()

        def right(sim):
            for _ in range(10_000):
                value = yield ping.get()
                yield pong.put(value)

        sim.process(left(sim))
        sim.process(right(sim))
        sim.run()
        return True

    assert benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_fair_share_pipe_churn(benchmark):
    """2k overlapping transfers through one processor-sharing pipe."""

    def run():
        sim = Simulator()
        pipe = FairSharePipe(sim, capacity_mbps=100.0)
        rng = np.random.default_rng(0)

        def spawner(sim, pipe):
            for _ in range(2_000):
                pipe.transfer(float(rng.uniform(1.0, 50.0)))
                yield sim.timeout(0.05)

        sim.process(spawner(sim, pipe))
        sim.run()
        return sim.now

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0


def test_bench_broker_fanout(benchmark):
    """10k messages fanned out to 20 subscribers."""

    def run():
        sim = Simulator()
        broker = Broker(sim, base_latency=0.001)
        subs = [broker.subscribe("t", f"s{i}", latency=0.01) for i in range(20)]
        for index in range(10_000):
            broker.publish("t", index)
        sim.run()
        return sum(sub.delivered for sub in subs)

    assert benchmark.pedantic(run, rounds=3, iterations=1) == 200_000


def test_bench_full_cell_throughput(benchmark):
    """One complete 3-iteration bidding cell (the experiment unit)."""

    def run():
        return run_cell(
            CellSpec(
                scheduler="bidding",
                workload="80%_large",
                profile="fast-slow",
                seed=11,
            )
        )

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results[-1].jobs_completed == 120
