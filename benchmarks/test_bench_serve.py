"""Benchmark: maximum sustainable service throughput per scheduler.

Open-loop capacity probing: ramp Poisson arrival rates through the
service layer and find the highest rate each scheduler sustains while
meeting the SLO (p99 latency under ``BENCH_P99_THRESHOLD_S`` with shed
rate under ``BENCH_SHED_THRESHOLD``).  This is the service-level
restatement of the paper's claim: locality-aware allocation extracts
more useful throughput from the same five workers, so the Bidding
Scheduler's sustainable rate is at least the Baseline's.

The full per-rate grid is printed as JSON, so the run doubles as a
machine-readable capacity report.
"""

import json

from conftest import once
from repro.cluster.profiles import all_equal
from repro.engine.runtime import EngineConfig
from repro.schedulers.registry import make_scheduler
from repro.serve import AdmissionConfig, PoissonArrivals, ServiceConfig, ServiceRuntime

BENCH_SEED = 11
BENCH_RATES = (0.5, 0.75, 1.0)
BENCH_DURATION_S = 240.0
BENCH_QUEUE_CAP = 64
#: The SLO: p99 must stay under ~2.5x a worst-case single download
#: (1 GB at 10 MB/s ~ 100 s) with under 10 % of arrivals shed.
BENCH_P99_THRESHOLD_S = 130.0
BENCH_SHED_THRESHOLD = 0.10
BENCH_SCHEDULERS = ("baseline", "bidding")


def _service_report(scheduler: str, rate: float):
    runtime = ServiceRuntime(
        profile=all_equal(),
        scheduler=make_scheduler(scheduler),
        arrivals=PoissonArrivals(rate=rate),
        admission_config=AdmissionConfig(queue_cap=BENCH_QUEUE_CAP),
        service_config=ServiceConfig(duration_s=BENCH_DURATION_S),
        config=EngineConfig(seed=BENCH_SEED, trace=False),
    )
    return runtime.run()


def _sustains(report) -> bool:
    return (
        report.latency_p99_s < BENCH_P99_THRESHOLD_S
        and report.shed_rate < BENCH_SHED_THRESHOLD
    )


def capacity_sweep():
    """Probe every (scheduler, rate) cell; summarise sustainable rates."""
    grid = {
        scheduler: {rate: _service_report(scheduler, rate) for rate in BENCH_RATES}
        for scheduler in BENCH_SCHEDULERS
    }
    sustainable = {
        scheduler: max(
            (rate for rate, report in cells.items() if _sustains(report)),
            default=0.0,
        )
        for scheduler, cells in grid.items()
    }
    return grid, sustainable


def test_bench_serve_capacity(benchmark):
    grid, sustainable = once(benchmark, capacity_sweep)
    payload = {
        "p99_threshold_s": BENCH_P99_THRESHOLD_S,
        "shed_threshold": BENCH_SHED_THRESHOLD,
        "max_sustainable_jobs_per_s": sustainable,
        "cells": {
            scheduler: {str(rate): report.to_dict() for rate, report in cells.items()}
            for scheduler, cells in grid.items()
        },
    }
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))

    # Every admitted job completes, at every load level (conservation).
    for cells in grid.values():
        for report in cells.values():
            assert report.completed == report.admitted
    # Both schedulers handle light load comfortably.
    for scheduler in BENCH_SCHEDULERS:
        assert sustainable[scheduler] >= BENCH_RATES[0], scheduler
    # The service-level claim: locality buys capacity.  Under this fixed
    # seed the bidding scheduler sustains a strictly higher rate (its
    # p99 at 0.75/s is ~121 s vs the baseline's ~151 s).
    assert sustainable["bidding"] > sustainable["baseline"]
