"""Benchmark S1-S4: the larger-scale evaluation the paper leaves as
future work -- how the Bidding-vs-Baseline comparison moves with scale.
"""

from conftest import once
from repro.experiments.sensitivity import (
    render,
    sweep_arrival_rate,
    sweep_heterogeneity,
    sweep_job_count,
    sweep_worker_count,
)


def test_bench_s1_worker_count(benchmark):
    points = once(benchmark, sweep_worker_count)
    print()
    print(render("S1: worker-count sweep (all_diff_large)", points))
    # Bidding's advantage survives a 5x fleet scale-up.
    assert all(point.speedup > 1.3 for point in points)


def test_bench_s2_job_count(benchmark):
    points = once(benchmark, sweep_job_count)
    print()
    print(render("S2: job-count sweep (80%_large)", points))
    # Advantage is stable across a 20x workflow scale-up.
    speedups = [point.speedup for point in points]
    assert min(speedups) > 1.2
    assert max(speedups) / min(speedups) < 1.5


def test_bench_s3_heterogeneity(benchmark):
    points = once(benchmark, sweep_heterogeneity)
    print()
    print(render("S3: heterogeneity sweep (all_diff_large)", points))
    # The more unequal the fleet, the more speed-aware bidding pays.
    assert points[-1].speedup > points[0].speedup


def test_bench_s4_arrival_rate(benchmark):
    points = once(benchmark, sweep_arrival_rate)
    print()
    print(render("S4: arrival-rate sweep (80%_large)", points))
    # Contention is where scheduling matters: the burst end of the sweep
    # shows a clear win, the sparse end approaches parity.
    assert points[0].speedup > points[-1].speedup
    assert points[0].speedup > 1.2
