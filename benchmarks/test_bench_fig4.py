"""Benchmark E5 + E9: regenerate Figure 4 and the abstract's 3.57x claim.

Paper reference points:
* Bidding outperforms the Baseline most where workers are slow or
  repositories large (one-slow columns),
* it is "comparable to, or somewhat slower than" the Baseline where one
  worker is much faster and the data small -- visible on the cold first
  iteration, before warm-cache locality dominates,
* abstract: "up to 3.57x faster execution times when compared to the
  baseline centralized approach where the master controls data
  locality" (our Spark-style locality-aware policy).
"""

from conftest import once
from repro.experiments.fig4_breakdown import render, run_fig4

BENCH_SEEDS = (11,)


def test_bench_fig4_breakdown(benchmark):
    result = once(benchmark, lambda: run_fig4(seeds=BENCH_SEEDS))
    print()
    print(render(result))

    # Bidding wins every cell on the 3-iteration average.
    for cell in result.cells:
        assert cell.speedup > 1.0, (cell.workload, cell.profile)

    # The one-slow column is bidding's strongest territory (per workload,
    # one-slow beats the one-fast column's speedup more often than not).
    wins = 0
    workloads = {cell.workload for cell in result.cells}
    for workload in workloads:
        if result.cell(workload, "one-slow").speedup >= result.cell(workload, "one-fast").speedup:
            wins += 1
    assert wins >= len(workloads) / 2

    # Cold first iteration: at least one cell is comparable-or-slower
    # (<= 1.05x), reproducing the contest-overhead caveat.
    assert any(cell.cold_speedup <= 1.05 for cell in result.cells)

    # Abstract claim: "up to 3.57x" vs the centralized locality approach.
    assert result.best_vs_centralized >= 3.0
