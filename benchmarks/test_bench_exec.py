"""Benchmark: real-backend dispatch throughput and handoff latency.

Informational, not gated: the numbers characterise the coordinator's
socket handoff path (plan pop -> processing move -> dispatch write ->
worker DONE) on real OS processes, where wall time is dominated by the
scaled cost-model sleeps, not by scheduling work.  Two figures matter:

* **dispatch throughput** -- completed jobs per wall second across the
  whole pool at an aggressive time scale;
* **handoff latency** -- per-job coordinator overhead, measured as
  ``done_at - dispatched_at - exec_s`` (everything that is *not* the
  worker executing): queue residency at the worker, both socket hops,
  and coordinator bookkeeping.

No thresholds are asserted -- runner machines vary too much for a
perf gate on process spawning -- only correctness of the runs
(conservation, nothing crashed).  The JSON block printed per run is
the machine-readable record.
"""

import json

from conftest import once
from repro.exec.diff import smoke_runtime
from repro.exec.plan import capture_workflow_plan
from repro.exec.pool import ExecBackend, ExecConfig

BENCH_SEED = 11
BENCH_JOBS = 24
#: Aggressive compression (1 sim-second = 2 wall-ms) so the bench
#: measures the handoff machinery rather than the modelled sleeps.
BENCH_TIME_SCALE = 0.002
BENCH_SCHEDULERS = ("baseline", "bidding")


def _run_real(scheduler: str):
    plan, _sim = capture_workflow_plan(
        smoke_runtime(scheduler, seed=BENCH_SEED, n_jobs=BENCH_JOBS)
    )
    backend = ExecBackend(
        plan, ExecConfig(time_scale=BENCH_TIME_SCALE, trace=False)
    )
    return backend.run()


def real_backend_sweep():
    return {scheduler: _run_real(scheduler) for scheduler in BENCH_SCHEDULERS}


def test_bench_exec_dispatch(benchmark):
    reports = once(benchmark, real_backend_sweep)
    payload = {
        scheduler: {
            "jobs": report.completed,
            "wall_s": round(report.wall_s, 3),
            "throughput_jobs_per_s": round(report.throughput_jobs_per_s, 2),
            "handoff_p50_ms": round(report.handoff_p50_s * 1000, 3),
            "handoff_max_ms": round(report.handoff_max_s * 1000, 3),
        }
        for scheduler, report in reports.items()
    }
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))

    for scheduler, report in reports.items():
        assert report.conserved, scheduler
        assert report.completed == BENCH_JOBS, scheduler
        assert report.crashes == 0 and report.failed == 0, scheduler
        # Handoff latency is a real, positive measurement on every job.
        assert report.handoff_p50_s >= 0.0
        assert report.handoff_max_s >= report.handoff_p50_s
