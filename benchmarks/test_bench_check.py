"""Benchmark: invariant monitoring must be observational and cheap.

Two gates for :mod:`repro.check`:

* **purity** -- a monitored run (``check=True``) produces bit-identical
  results to the bare run: the monitor observes, it never perturbs;
* **cost** -- monitors off (the default) is the production path and the
  hooks behind it are ``if monitor is not None`` guards, so a monitored
  full cell may cost at most a modest constant factor and an
  unmonitored one must match the historical bare timing (min-of-N).
"""

import json
import time

from conftest import once
from repro.cluster.profiles import all_equal
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.schedulers.registry import make_scheduler
from repro.workload.generators import job_config_by_name

BENCH_SEED = 11
BENCH_ROUNDS = 5
#: Monitored-run budget: every hook is O(1) dict work, so even with the
#: full law set live the cell must stay within 25 % of the bare run
#: (measured ~3 %; the slack absorbs timer noise on sub-second cells).
MONITOR_OVERHEAD_LIMIT = 0.25


def _run(check):
    _corpus, stream = job_config_by_name("80%_large").build(seed=BENCH_SEED)
    runtime = WorkflowRuntime(
        profile=all_equal(),
        stream=stream,
        scheduler=make_scheduler("bidding"),
        config=EngineConfig(seed=BENCH_SEED, trace=False, check=check),
    )
    result = runtime.run()
    return result, runtime.monitor


def _timed(check):
    best = float("inf")
    result = monitor = None
    for _ in range(BENCH_ROUNDS):
        start = time.perf_counter()
        result, monitor = _run(check)
        best = min(best, time.perf_counter() - start)
    return result, monitor, best


def monitor_overhead():
    bare_result, _, bare_s = _timed(False)
    checked_result, monitor, checked_s = _timed(True)
    return bare_result, bare_s, checked_result, checked_s, monitor


def test_bench_monitor_overhead(benchmark):
    bare_result, bare_s, checked_result, checked_s, monitor = once(
        benchmark, monitor_overhead
    )
    overhead = checked_s / bare_s - 1.0
    print()
    print(
        json.dumps(
            {
                "bare_best_s": bare_s,
                "checked_best_s": checked_s,
                "overhead": overhead,
                "checks_performed": monitor.checks,
                "makespan_s": bare_result.makespan_s,
            },
            indent=2,
            sort_keys=True,
        )
    )
    # Purity: the monitor observed a lot and changed nothing.
    assert monitor.checks > 1000
    assert checked_result.makespan_s == bare_result.makespan_s
    assert checked_result.jobs_completed == bare_result.jobs_completed
    assert checked_result.data_load_mb == bare_result.data_load_mb
    assert checked_result.cache_misses == bare_result.cache_misses
    # Cost: monitoring stays within its budget (min-of-N timing).
    assert overhead < MONITOR_OVERHEAD_LIMIT, f"monitor overhead {overhead:.1%}"
