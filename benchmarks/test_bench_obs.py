"""Benchmark: observability must be free when off, cheap when on.

``repro.obs`` threads span contexts through engine messages and samples
probe gauges on a sim-time cadence.  Every hot-path hook is guarded by
``if self.obs is not None``, so a run with observability disabled must
produce the *identical* simulation as before the subsystem existed and
add under 2 % wall-clock overhead on a full-cell run.  With
observability enabled the simulation must still be bit-identical (the
recorder is read-only and draws no randomness) and the bounded-retention
probes/ctx plumbing must stay within a generous envelope.
"""

import gc
import json
import time

from conftest import once
from repro.cluster.profiles import all_equal
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.schedulers.registry import make_scheduler
from repro.workload.generators import job_config_by_name

BENCH_SEED = 11
BENCH_ROUNDS = 25
# Both "off" spellings run the identical code path, so any measured
# delta is timer noise.  The limit matches the CI bench gate's
# ``--tolerance 0.10``: loose enough to clear the noise floor of shared
# runners, tight enough to catch a real per-message hook slipping past
# the ``if self.obs is not None`` guards (the result-equality asserts
# below are the exact gate; this one bounds wall-clock drift).
BENCH_OFF_OVERHEAD_LIMIT = 0.10
# The on-path envelope guards against accidental quadratic blow-ups,
# not a perf target: at the default 1 s probe cadence an ~840 s sim
# legitimately samples every gauge 840 times (roughly 1.5-2x observed,
# with wide GC-driven variance on shared runners).
BENCH_ON_OVERHEAD_LIMIT = 4.00


def _run(obs):
    _corpus, stream = job_config_by_name("80%_large").build(seed=BENCH_SEED)
    runtime = WorkflowRuntime(
        profile=all_equal(),
        stream=stream,
        scheduler=make_scheduler("bidding"),
        config=EngineConfig(seed=BENCH_SEED, trace=False, obs=obs),
    )
    return runtime.run()


def _timed_pair(variants, rounds=BENCH_ROUNDS):
    # Interleave single runs round-robin and keep the per-variant
    # minimum: adjacent runs see near-identical machine conditions, and
    # each variant only needs ONE quiet ~30 ms window across all rounds
    # to hit its floor, which makes min-of-N robust on noisy runners.
    results, best = {}, {name: float("inf") for name in variants}
    for name, obs in variants.items():  # warmup round, untimed
        results[name] = _run(obs)
    for _ in range(rounds):
        for name, obs in variants.items():
            # Collect untimed, then keep the collector out of the timed
            # window: cyclic-GC passes otherwise alias onto whichever
            # variant's slot matches the allocation cadence.
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                results[name] = _run(obs)
                best[name] = min(best[name], time.perf_counter() - start)
            finally:
                gc.enable()
    return results, best


def obs_overhead():
    # The strict gate compares the two spellings of "disabled" head to
    # head; the allocation-heavy obs-on runs are timed apart so their
    # GC pressure cannot skew the off-path comparison.
    results, best = _timed_pair({"bare": False, "off": None})
    on_results, on_best = _timed_pair({"on": True}, rounds=8)
    return (
        results["bare"],
        best["bare"],
        results["off"],
        best["off"],
        on_results["on"],
        on_best["on"],
    )


def test_bench_obs_overhead(benchmark):
    bare_result, bare_s, off_result, off_s, on_result, on_s = once(
        benchmark, obs_overhead
    )
    off_overhead = off_s / bare_s - 1.0
    on_overhead = on_s / bare_s - 1.0
    print()
    print(
        json.dumps(
            {
                "bare_best_s": bare_s,
                "off_best_s": off_s,
                "on_best_s": on_s,
                "off_overhead": off_overhead,
                "on_overhead": on_overhead,
                "makespan_s": bare_result.makespan_s,
            },
            indent=2,
            sort_keys=True,
        )
    )
    # Off is off: both spellings of "disabled" are the same code path
    # and the same simulation.
    assert off_result == bare_result
    # The recorder is read-only, so enabling it must not perturb a
    # single metric either.
    assert on_result == bare_result
    # Disabled observability costs nothing (min-of-N timing)...
    assert off_overhead < BENCH_OFF_OVERHEAD_LIMIT, (
        f"obs-off overhead {off_overhead:.1%}"
    )
    # ...and enabled observability stays within a generous envelope.
    assert on_overhead < BENCH_ON_OVERHEAD_LIMIT, f"obs-on overhead {on_overhead:.1%}"
