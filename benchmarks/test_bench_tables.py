"""Benchmark E6-E8: regenerate Tables 1-3 (full MSR pipeline, cold caches).

Paper reference points (three runs each):
* Table 1: Bidding finishes 10.3 %-25.5 % faster,
* Table 2: Bidding downloads ~62-63 % less (~330 GB vs ~880 GB),
* Table 3: Bidding roughly halves cache misses (~200 vs ~400).

Shape asserted: per-run wins on all three metrics with reductions in a
band around the paper's; see EXPERIMENTS.md for the measured-vs-paper
discussion (our Bidding duplicates somewhat more than theirs because
the simulated pipeline saturates queues harder).
"""

from conftest import once
from repro.experiments.tables_msr import render, run_tables
from repro.metrics.report import percent_change

BENCH_SEEDS = (101, 202, 303)


def test_bench_tables_msr(benchmark):
    tables = once(benchmark, lambda: run_tables(seeds=BENCH_SEEDS))
    print()
    print(render(tables))

    for run in range(tables.runs):
        bidding_time, baseline_time = tables.time_row(run)
        bidding_mb, baseline_mb = tables.data_row(run)
        bidding_miss, baseline_miss = tables.miss_row(run)

        # Table 1: bidding faster every run, in a 5-40 % band
        # (paper: 10.3-25.5 %).
        time_reduction = percent_change(baseline_time, bidding_time)
        assert 5.0 <= time_reduction <= 40.0, f"run {run}: {time_reduction:.1f}%"

        # Table 2: bidding moves substantially less data (paper ~62 %).
        data_reduction = percent_change(baseline_mb, bidding_mb)
        assert data_reduction >= 25.0, f"run {run}: {data_reduction:.1f}%"

        # Table 3: a large cache-miss gap (paper ~halving).
        assert baseline_miss / bidding_miss >= 1.3, f"run {run}"

    # Cross-table consistency: per-run data ratio tracks miss ratio in
    # direction (more misses -> more data) for the baseline.
    baseline_misses = [tables.miss_row(r)[1] for r in range(tables.runs)]
    baseline_data = [tables.data_row(r)[1] for r in range(tables.runs)]
    order_by_miss = sorted(range(tables.runs), key=lambda r: baseline_misses[r])
    assert baseline_data[order_by_miss[0]] <= baseline_data[order_by_miss[-1]] * 1.1
