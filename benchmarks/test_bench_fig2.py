"""Benchmark E1: regenerate Figure 2 (Spark vs Crossflow Baseline).

Paper reference points: Spark is slower in every column group --
7.94x in G1 (fast-slow workers, large repositories) and 2.3x in G2
(equal workers, small repositories).

Shape asserted: Crossflow wins every group; the heterogeneous+large
group shows a multiple-x gap (straggler effect); magnitudes for the
framework-overhead-dominated G2 are expectedly attenuated (we model
scheduling policy, not Spark's JVM/stage overheads -- see
EXPERIMENTS.md).
"""

from conftest import once
from repro.experiments.fig2_spark import render, run_fig2

BENCH_SEEDS = (11,)


def test_bench_fig2_spark_vs_crossflow(benchmark):
    result = once(benchmark, lambda: run_fig2(seeds=BENCH_SEEDS))
    print()
    print(render(result))

    # Spark never beats Crossflow in the paper's chart.
    for group in result.groups:
        assert group.spark_slowdown >= 0.95, group.label

    # G1 (fast-slow, large): a multiple-x gap from the straggler effect.
    assert result.group("G1").spark_slowdown >= 3.0

    # G4 (varying speeds, repetitive): locality + heterogeneity compound.
    assert result.group("G4").spark_slowdown >= 2.0

    # G1 is the worst group for Spark, as in the paper.
    slowdowns = {g.label: g.spark_slowdown for g in result.groups}
    assert max(slowdowns, key=slowdowns.get).startswith("G1")
