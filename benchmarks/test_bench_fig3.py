"""Benchmark E2-E4: regenerate Figure 3 (a, b, c) and the Section 6.3.2
headline claims.

Paper reference points:
* ~24.5 % average speedup of Bidding over Baseline,
* ~49 % fewer cache misses, ~45.3 % less data load,
* 80%_large: ~22.65 vs ~45.5 misses, ~5270.87 vs ~10786.88 MB,
* all_diff_equal: ~9591.45 vs ~17908.08 MB (~57 % speedup).

We assert the *shape*: Bidding wins all three metrics on every workload
and the aggregate reductions land in the right ballpark.
"""

from conftest import once
from repro.experiments.fig3_aggregates import render, run_fig3

#: One seed keeps the bench under ~10 s; the CLI runs the full 3 seeds.
BENCH_SEEDS = (11,)


def test_bench_fig3_aggregates(benchmark):
    result = once(benchmark, lambda: run_fig3(seeds=BENCH_SEEDS))
    print()
    print(render(result))

    # Figure 3a: bidding faster on every workload.
    for row in result.rows:
        assert row.bidding_time_s < row.baseline_time_s, row.workload

    # Figure 3b/3c: locality metrics improve on every workload.
    for row in result.rows:
        assert row.bidding_misses < row.baseline_misses, row.workload
        assert row.bidding_data_mb < row.baseline_data_mb, row.workload

    # Section 6.3.2 claim 1: ~24.5 % speedup (accept a generous band --
    # our substrate is a simulator, not the authors' AWS testbed).
    assert 15.0 <= result.overall_speedup_pct <= 60.0

    # Claim 2: ~49 % fewer misses, ~45.3 % less data.
    assert 20.0 <= result.overall_miss_reduction_pct <= 65.0
    assert 30.0 <= result.overall_data_reduction_pct <= 65.0

    # The repetitive 80%_large callout: misses roughly halve.
    row = result.row("80%_large")
    assert row.baseline_misses / row.bidding_misses > 1.25
