"""Shared helpers for the benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures: it runs the corresponding experiment (at a reduced seed count
so the full suite stays under a few minutes), *prints the same
rows/series the paper reports*, and asserts the qualitative shape --
who wins and roughly by how much.  ``pytest benchmarks/
--benchmark-only`` therefore doubles as the reproduction's acceptance
run; the full-scale variants are available through the CLI
(``python -m repro all``).
"""

from __future__ import annotations


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiment cells are multi-second simulations; statistical repeats
    belong to the simulation seeds, not the wall-clock timer.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
