"""Benchmark A1-A5: the design-choice ablations of DESIGN.md Section 5."""

from conftest import once
from repro.experiments.ablations import (
    _render_pairs,
    _render_rows,
    ablate_adaptive_bids,
    ablate_bid_compute,
    ablate_bid_window,
    ablate_cache_capacity,
    ablate_contest_concurrency,
    ablate_fast_local_close,
    ablate_noise,
    ablate_popularity_skew,
    ablate_prefetch,
    ablate_schedulers,
    ablate_shared_origin,
)


def test_bench_a1_bid_window(benchmark):
    rows = once(benchmark, ablate_bid_window)
    print()
    print(_render_rows("A1a: bidding window sweep", rows))
    by_setting = {row.setting: row for row in rows}
    # A too-short window (0.1 s < the slow worker's bid latency) degrades
    # to fallback-random assignment: far worse than the paper's 1 s.
    assert by_setting["window=0.1s"].mean_makespan_s > 2 * by_setting["window=1.0s"].mean_makespan_s
    # Widening beyond 1 s changes little: contests close early on bids.
    assert by_setting["window=5.0s"].mean_makespan_s < 1.3 * by_setting["window=1.0s"].mean_makespan_s


def test_bench_a1_bid_compute(benchmark):
    rows = once(benchmark, ablate_bid_compute)
    print()
    print(_render_rows("A1b: bid computation cost sweep", rows))
    by_setting = {row.setting: row for row in rows}
    # Bids costing a full second blow through the 1 s window -> fallback.
    assert (
        by_setting["bid_compute=1.0s"].mean_makespan_s
        > 1.5 * by_setting["bid_compute=0.0s"].mean_makespan_s
    )


def test_bench_a2_noise(benchmark):
    pairs = once(benchmark, ablate_noise)
    print()
    print(_render_pairs("A2: noise sweep", pairs))
    # Bidding's advantage persists at the paper-calibration sigma=0.25.
    for label, bidding, baseline in pairs:
        if label in ("sigma=0.0", "sigma=0.1", "sigma=0.25"):
            assert bidding.mean_makespan_s < baseline.mean_makespan_s, label


def test_bench_a3_scheduler_shootout(benchmark):
    rows = once(benchmark, ablate_schedulers)
    print()
    print(_render_rows("A3: scheduler shoot-out", rows))
    by_name = {row.setting: row for row in rows}
    # Bidding is the fastest policy on the repetitive heterogeneous cell.
    assert by_name["bidding"].mean_makespan_s == min(
        row.mean_makespan_s for row in rows
    )
    # Any locality-aware pull policy beats random.
    assert by_name["baseline"].mean_makespan_s < by_name["random"].mean_makespan_s
    assert by_name["matchmaking"].mean_makespan_s < by_name["random"].mean_makespan_s


def test_bench_a4_cache_capacity(benchmark):
    pairs = once(benchmark, ablate_cache_capacity)
    print()
    print(_render_pairs("A4: cache capacity sweep", pairs))
    unbounded = pairs[0]
    smallest = pairs[-1]
    # Bidding's data-load advantage erodes as eviction defeats locality.
    advantage_unbounded = unbounded[2].mean_data_mb - unbounded[1].mean_data_mb
    advantage_smallest = smallest[2].mean_data_mb - smallest[1].mean_data_mb
    assert advantage_unbounded > advantage_smallest


def test_bench_a6_fast_local_close(benchmark):
    rows = once(benchmark, ablate_fast_local_close)
    print()
    print(_render_rows("A6: fast local close (one-slow, sparse 80%_large)", rows))
    off, on = rows
    # The future-work claim: bidding overhead for highly local jobs
    # drops substantially, with no loss of locality.
    assert on.mean_contest_s < 0.8 * off.mean_contest_s
    assert on.mean_data_mb <= 1.1 * off.mean_data_mb


def test_bench_a7_adaptive_bids(benchmark):
    rows = once(benchmark, ablate_adaptive_bids)
    print()
    print(_render_rows("A7: adaptive bids under OU speed drift", rows))
    off, on = rows
    # Bias-corrected bids must not hurt, and typically help, under
    # sustained drift between nominal and realised speeds.
    assert on.mean_makespan_s <= 1.05 * off.mean_makespan_s


def test_bench_a8_popularity_skew(benchmark):
    pairs = once(benchmark, ablate_popularity_skew)
    print()
    print(_render_pairs("A8: popularity-skew sweep (all-equal, zipf)", pairs))
    # More skew -> more reuse -> less data moved, for both schedulers.
    bidding_data = [b.mean_data_mb for _label, b, _bl in pairs]
    baseline_data = [bl.mean_data_mb for _label, _b, bl in pairs]
    assert bidding_data[-1] < bidding_data[0]
    assert baseline_data[-1] < baseline_data[0]
    # Bidding stays ahead on data movement at every skew level.
    for _label, bidding, baseline in pairs:
        assert bidding.mean_data_mb < baseline.mean_data_mb


def test_bench_a9_prefetch(benchmark):
    pairs = once(benchmark, ablate_prefetch)
    print()
    print(_render_pairs("A9: download prefetching (all-equal, all_diff_large)", pairs))
    (_off_label, bidding_off, baseline_off), (_on_label, bidding_on, baseline_on) = pairs
    # Prefetch helps the queue-building scheduler...
    assert bidding_on.mean_makespan_s < bidding_off.mean_makespan_s
    # ...and cannot help the one-job-at-a-time pull baseline.
    assert baseline_on.mean_makespan_s == baseline_off.mean_makespan_s
    # It moves no extra data (same misses, earlier downloads).
    assert bidding_on.mean_data_mb <= 1.05 * bidding_off.mean_data_mb


def test_bench_a10_shared_origin(benchmark):
    pairs = once(benchmark, ablate_shared_origin)
    print()
    print(_render_pairs("A10: shared-origin contention (all-equal, 80%_large)", pairs))
    free = pairs[0]
    tight = pairs[-1]
    # Everything slows under a tight origin...
    assert tight[1].mean_makespan_s > free[1].mean_makespan_s
    # ...but the locality scheduler's relative advantage grows: redundant
    # clones now also throttle everyone else's downloads.
    gap_free = free[2].mean_makespan_s / free[1].mean_makespan_s
    gap_tight = tight[2].mean_makespan_s / tight[1].mean_makespan_s
    assert gap_tight > gap_free


def test_bench_a5_contest_concurrency(benchmark):
    rows = once(benchmark, ablate_contest_concurrency)
    print()
    print(_render_rows("A5: contest concurrency", rows))
    times = [row.mean_makespan_s for row in rows]
    # Overlapping contests must not corrupt the protocol; results stay
    # within a tight band of the serialized default.
    assert max(times) <= 1.2 * min(times)
