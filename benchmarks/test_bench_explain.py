"""Benchmark: the decision ledger must be near-free and perturbation-free.

The ledger hook is one ``is not None`` guard at the master's assignment
seam; with ``ObsConfig(ledger=True)`` each assignment additionally asks
the active policy for its decision context (a read-only gather over
already-computed contest/plan state).  The ISSUE pins the envelope: on a
full-cell run the ledger may add under 2 % wall clock over the same run
with ``ledger=False``, and -- because building a record reads state and
draws no randomness -- the simulation metrics must be bit-identical with
the ledger on or off.
"""

import gc
import json
import time

from conftest import once
from repro.cluster.profiles import all_equal
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.obs import ObsConfig
from repro.schedulers.registry import make_scheduler
from repro.workload.generators import job_config_by_name

BENCH_SEED = 11
BENCH_ROUNDS = 25
#: The ISSUE's acceptance bound: ledger-on vs ledger-off (both obs-on,
#: so probe/ctx costs cancel and only the ledger itself is measured).
BENCH_LEDGER_OVERHEAD_LIMIT = 0.02


def _run(obs):
    _corpus, stream = job_config_by_name("80%_large").build(seed=BENCH_SEED)
    runtime = WorkflowRuntime(
        profile=all_equal(),
        stream=stream,
        scheduler=make_scheduler("bidding"),
        config=EngineConfig(seed=BENCH_SEED, trace=False, obs=obs),
    )
    return runtime.run(), runtime


def ledger_overhead():
    # Interleaved min-of-N (same discipline as test_bench_obs): adjacent
    # runs see near-identical machine conditions and each variant needs
    # one quiet window across all rounds to hit its floor.
    variants = {
        "off": ObsConfig(ledger=False),
        "on": ObsConfig(ledger=True),
    }
    results, runtimes, best = {}, {}, {name: float("inf") for name in variants}
    for name, obs in variants.items():  # warmup round, untimed
        results[name], runtimes[name] = _run(obs)
    for _ in range(BENCH_ROUNDS):
        for name, obs in variants.items():
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                results[name], runtimes[name] = _run(obs)
                best[name] = min(best[name], time.perf_counter() - start)
            finally:
                gc.enable()
    return results, runtimes, best


def test_bench_ledger_overhead(benchmark):
    results, runtimes, best = once(benchmark, ledger_overhead)
    overhead = best["on"] / best["off"] - 1.0
    ledger = runtimes["on"].obs.ledger
    print()
    print(
        json.dumps(
            {
                "ledger_off_best_s": best["off"],
                "ledger_on_best_s": best["on"],
                "ledger_overhead": overhead,
                "decisions_recorded": len(ledger.records),
                "makespan_s": results["on"].makespan_s,
            },
            indent=2,
            sort_keys=True,
        )
    )
    # Observation-only: not a single metric may move with the ledger on.
    assert results["on"] == results["off"]
    # The off-variant records nothing, the on-variant one record per job.
    assert runtimes["off"].obs.ledger is None
    assert len(ledger.records) == results["on"].jobs_completed
    # The ISSUE's bound: under 2 % on the full-cell bench (min-of-N).
    assert overhead < BENCH_LEDGER_OVERHEAD_LIMIT, f"ledger overhead {overhead:.2%}"
