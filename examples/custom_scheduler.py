"""Extending the engine: write your own allocation policy.

The engine treats schedulers as plug-in strategy pairs
(:class:`~repro.schedulers.base.MasterPolicy` /
:class:`~repro.schedulers.base.WorkerPolicy`).  This example implements
a new one from scratch -- a *greedy locality* scheduler where the master
pushes each job to the worker already holding its repository (falling
back to least-loaded) -- and races it against the paper's two schedulers
on the same workload.

Greedy locality is the "master controls data locality" strawman the
paper's abstract compares against: it maximises locality but ignores
worker speeds and committed workloads, so the holder of a popular
repository becomes a convoy.

Run with::

    python examples/custom_scheduler.py
"""

from repro.cluster.profiles import profile_by_name
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.metrics.report import format_table
from repro.schedulers.base import MasterPolicy, PassiveWorkerPolicy, SchedulerPolicy
from repro.schedulers.registry import make_scheduler
from repro.workload.generators import job_config_by_name
from repro.workload.job import Job


class GreedyLocalityMaster(MasterPolicy):
    """Send every job to the worker that already holds its repository."""

    name = "greedy-locality"

    def __init__(self) -> None:
        super().__init__()
        #: worker -> repositories the master believes it holds.
        self.holdings: dict[str, set[str]] = {}
        self.assigned_counts: dict[str, int] = {}

    def start(self) -> None:
        self.assigned_counts = {name: 0 for name in self.master.worker_names}

    def on_job(self, job: Job) -> None:
        worker = None
        if job.repo_id is not None:
            holders = [
                name
                for name, repos in self.holdings.items()
                if job.repo_id in repos
            ]
            if holders:
                worker = min(holders)  # deterministic: first holder wins
        if worker is None:
            worker = min(
                self.master.worker_names,
                key=lambda name: (self.assigned_counts[name], name),
            )
        self.assigned_counts[worker] += 1
        if job.repo_id is not None:
            self.holdings.setdefault(worker, set()).add(job.repo_id)
        self.master.assign(job, worker)


def make_greedy_policy() -> SchedulerPolicy:
    """Package the custom policy exactly like the built-ins."""
    return SchedulerPolicy(
        name="greedy-locality",
        master_factory=GreedyLocalityMaster,
        worker_factory=PassiveWorkerPolicy,
    )


def main() -> None:
    config = job_config_by_name("80%_large")
    _corpus, stream = config.build(seed=5)

    rows = []
    for label, policy in [
        ("greedy-locality", make_greedy_policy()),
        ("baseline", make_scheduler("baseline")),
        ("bidding", make_scheduler("bidding")),
    ]:
        caches = None
        results = []
        for iteration in range(3):
            runtime = WorkflowRuntime(
                profile=profile_by_name("fast-slow"),
                stream=stream,
                scheduler=policy,
                config=EngineConfig(seed=5),
                initial_caches=caches,
                iteration=iteration,
            )
            results.append(runtime.run())
            caches = runtime.cache_snapshot()
        mean_time = sum(r.makespan_s for r in results) / len(results)
        mean_misses = sum(r.cache_misses for r in results) / len(results)
        mean_data = sum(r.data_load_mb for r in results) / len(results)
        rows.append([label, f"{mean_time:.1f}", f"{mean_misses:.1f}", f"{mean_data:.0f}"])

    print(
        format_table(
            ["scheduler", "mean time [s]", "mean misses", "mean data [MB]"],
            rows,
            title=(
                "Custom greedy-locality vs the paper's schedulers\n"
                "(80%_large, fast-slow cluster, 3 warm iterations)"
            ),
        )
    )
    print(
        "\nGreedy locality minimises misses but convoys the repository "
        "holder;\nbidding trades a few duplicate clones for a shorter makespan."
    )


if __name__ == "__main__":
    main()
