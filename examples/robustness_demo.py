"""Robustness beyond the paper: worker death and message loss.

The paper explicitly scopes fault tolerance out ("no specific policies
in place to handle situations such as a worker dying after winning a
bid").  This example shows what that default costs, and what the
:mod:`repro.faults` extension buys back -- all through the public
``run_workflow(faults=FaultPlan(...))`` front door:

1. a worker dies mid-run under the paper's protocol (``recovery=None``)
   -- the orphaned jobs are declared failed and the run raises
   :class:`~repro.WorkflowStalled`;
2. the same crash with recovery: the master re-dispatches the orphans,
   the worker restarts a minute later, and the workflow completes;
3. 30 % control-plane message loss -- the Bidding Scheduler completes
   regardless (the 1 s window + fallback double as loss handling).

Run with::

    python examples/robustness_demo.py
"""

from repro import (
    FaultPlan,
    MessageLoss,
    RecoveryConfig,
    WorkerCrash,
    WorkflowStalled,
    run_workflow,
)

SEED = 41
WORKLOAD = "all_diff_equal"


def run_with(plan):
    return run_workflow(
        scheduler="bidding", workload=WORKLOAD, seed=SEED, iterations=1, faults=plan
    )[0]


def main() -> None:
    print("1) Worker w3 dies at t=100s, paper protocol (no recovery):")
    paper_plan = FaultPlan(
        crashes=(WorkerCrash(at_s=100.0, worker="w3"),), recovery=None
    )
    try:
        run_with(paper_plan)
        print("   unexpectedly completed!")
    except WorkflowStalled as stall:
        print(
            f"   STALLED as the paper predicts -- {len(stall.failed_jobs)} "
            f"orphaned job(s) declared failed: {sorted(stall.failed_jobs)[:4]} ..."
        )

    print("\n2) Same crash with the recovery protocol (restart after 60s):")
    recovery_plan = FaultPlan(
        crashes=(WorkerCrash(at_s=100.0, worker="w3", restart_after_s=60.0),),
        recovery=RecoveryConfig(max_redispatches=5),
    )
    result = run_with(recovery_plan)
    survivors = {name: count for name, count in result.per_worker_jobs.items() if count}
    print(
        f"   completed all {result.jobs_completed} jobs in "
        f"{result.makespan_s:.0f}s; {result.crashes} crash, "
        f"{result.redispatches} re-dispatch(es); per-worker load: {survivors}"
    )

    print("\n3) 30% control-plane message loss (reliable data plane):")
    lossy_plan = FaultPlan(
        message_loss=(MessageLoss(start_s=0.0, end_s=10_000.0, probability=0.3),),
    )
    result = run_with(lossy_plan)
    print(
        f"   completed all {result.jobs_completed} jobs in "
        f"{result.makespan_s:.0f}s; {result.contests_fallback} contests fell "
        f"back to an arbitrary worker when every bid was lost."
    )


if __name__ == "__main__":
    main()
