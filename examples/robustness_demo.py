"""Robustness beyond the paper: worker death and message loss.

The paper explicitly scopes fault tolerance out ("no specific policies
in place to handle situations such as a worker dying after winning a
bid").  This example shows what that default costs, and what the
engine's extensions buy back:

1. a worker dies mid-run under the paper's protocol -- the workflow
   stalls (we bound it with a simulation deadline and report the stall);
2. the same failure with ``fault_tolerance=True`` -- orphaned jobs are
   reallocated and the survivors finish the workflow;
3. 30 % control-plane message loss -- the Bidding Scheduler completes
   regardless (the 1 s window + fallback double as loss handling).

Run with::

    python examples/robustness_demo.py
"""

from repro.cluster.profiles import all_equal
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.schedulers.registry import make_scheduler
from repro.workload.generators import job_config_by_name

SEED = 41


def build(fault_tolerance=False, message_loss=0.0, max_sim_time=3000.0):
    _corpus, stream = job_config_by_name("all_diff_equal").build(seed=SEED)
    return WorkflowRuntime(
        profile=all_equal(),
        stream=stream,
        scheduler=make_scheduler("bidding"),
        config=EngineConfig(
            seed=SEED,
            fault_tolerance=fault_tolerance,
            message_loss=message_loss,
            max_sim_time=max_sim_time,
        ),
    )


def kill_one_worker(runtime, at=100.0, name="w3"):
    runtime.sim.timeout(at).add_callback(lambda _e: runtime.workers[name].kill())


def main() -> None:
    print("1) Worker w3 dies at t=100s, paper protocol (no fault tolerance):")
    runtime = build(fault_tolerance=False)
    kill_one_worker(runtime)
    try:
        runtime.run()
        print("   unexpectedly completed!")
    except RuntimeError:
        print(
            f"   STALLED as the paper predicts -- "
            f"{runtime.master.outstanding} jobs orphaned/unfinished when the "
            f"simulation deadline hit."
        )

    print("\n2) Same failure with the fault-tolerance extension:")
    runtime = build(fault_tolerance=True, max_sim_time=100_000.0)
    kill_one_worker(runtime)
    result = runtime.run()
    survivors = {name: count for name, count in result.per_worker_jobs.items() if count}
    print(
        f"   completed all {result.jobs_completed} jobs in "
        f"{result.makespan_s:.0f}s; post-failure load: {survivors}"
    )

    print("\n3) 30% control-plane message loss (reliable data plane):")
    runtime = build(message_loss=0.3, max_sim_time=100_000.0)
    result = runtime.run()
    broker = runtime.topology.broker
    print(
        f"   completed all {result.jobs_completed} jobs in "
        f"{result.makespan_s:.0f}s despite {broker.dropped} dropped messages; "
        f"{runtime.metrics.contests_fallback} contests fell back to an "
        f"arbitrary worker."
    )


if __name__ == "__main__":
    main()
