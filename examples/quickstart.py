"""Quickstart: compare the Bidding Scheduler against the Baseline.

Runs the paper's ``80%_large`` workload (mostly large repositories, 80 %
of the large jobs need the same repository) on a heterogeneous cluster
for three cache-persisting iterations -- the paper's exact methodology
-- and prints the three Section 6.1 metrics per scheduler.

Run with::

    python examples/quickstart.py
"""

from repro import compare_schedulers
from repro.metrics.report import format_table, percent_change


def main() -> None:
    results = compare_schedulers(
        workload="80%_large",
        profile="fast-slow",
        seed=7,
        schedulers=("baseline", "bidding"),
        iterations=3,
    )

    rows = []
    for scheduler, runs in results.items():
        mean_time = sum(r.makespan_s for r in runs) / len(runs)
        mean_misses = sum(r.cache_misses for r in runs) / len(runs)
        mean_data = sum(r.data_load_mb for r in runs) / len(runs)
        rows.append([scheduler, f"{mean_time:.1f}", f"{mean_misses:.1f}", f"{mean_data:.1f}"])

    print(
        format_table(
            ["scheduler", "mean time [s]", "mean cache misses", "mean data load [MB]"],
            rows,
            title="80%_large on a fast-slow cluster (3 iterations, warm caches)",
        )
    )

    baseline = results["baseline"]
    bidding = results["bidding"]
    speedup = percent_change(
        sum(r.makespan_s for r in baseline), sum(r.makespan_s for r in bidding)
    )
    print(f"\nBidding is {speedup:.1f}% faster end to end on this configuration.")


if __name__ == "__main__":
    main()
