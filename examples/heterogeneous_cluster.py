"""Worker heterogeneity: how each scheduler treats fast and slow nodes.

The paper's Figure 4 argument is that the Bidding Scheduler's estimates
let the master "prioritize workers based on their capabilities, avoiding
the prolongation of execution due to slower nodes carrying excessive
workloads".  This example makes that visible: it runs the same
large-repository workload under four policies on a one-slow cluster and
prints how many jobs (and megabytes) each worker ended up with.

Expected picture: random/round-robin give the slow worker a full share
(long makespan); the Baseline's pull loop self-balances somewhat; the
Bidding Scheduler starves the slow worker of big jobs explicitly.

Run with::

    python examples/heterogeneous_cluster.py
"""

from repro import run_workflow
from repro.metrics.report import format_table


def main() -> None:
    rows = []
    per_worker_tables = []
    for scheduler in ("round-robin", "random", "baseline", "bidding"):
        runs = run_workflow(
            scheduler=scheduler,
            workload="all_diff_large",
            profile="one-slow",
            seed=3,
            iterations=1,  # a single cold run isolates the balancing effect
        )
        result = runs[0]
        rows.append([scheduler, f"{result.makespan_s:.1f}", str(result.cache_misses)])
        per_worker_tables.append(
            format_table(
                ["worker", "jobs", "MB downloaded"],
                [
                    [name, str(result.per_worker_jobs.get(name, 0)), f"{mb:.0f}"]
                    for name, mb in sorted(result.per_worker_mb.items())
                ],
                title=f"\n{scheduler}: per-worker load (w1 is the 4x-slow worker)",
            )
        )

    print(
        format_table(
            ["scheduler", "makespan [s]", "cache misses"],
            rows,
            title="all_diff_large on a one-slow cluster (cold caches)",
        )
    )
    for table in per_worker_tables:
        print(table)


if __name__ == "__main__":
    main()
