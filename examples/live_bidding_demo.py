"""Live demo: the bidding protocol on real threads.

Everything else in this repository runs inside the discrete-event
simulator; this example runs the same two schedulers on the *threaded*
engine -- real worker threads, real queues, wall-clock sleeps scaled at
1 simulated second = 1 ms -- so you can watch the protocol produce the
same qualitative outcome outside the simulator.

Run with::

    python examples/live_bidding_demo.py
"""

from repro.cluster.profiles import fast_slow
from repro.engine.threaded import ThreadedMaster
from repro.metrics.report import format_table
from repro.workload.generators import job_config_by_name


def main() -> None:
    # 120 jobs, repetitive large-repository pattern, same for both runs.
    config = job_config_by_name("80%_large")
    _corpus, stream = config.build(seed=99)
    jobs = stream.jobs

    rows = []
    distributions = []
    for scheduler in ("baseline", "bidding"):
        master = ThreadedMaster(
            specs=list(fast_slow().specs),
            scheduler=scheduler,
            time_scale=0.0005,  # 1 simulated second = 0.5 ms wall time
        )
        result = master.run(jobs)
        rows.append(
            [
                scheduler,
                f"{result.wall_seconds:.2f}",
                str(result.cache_misses),
                str(result.cache_hits),
                f"{result.data_load_mb:.0f}",
            ]
        )
        distributions.append(
            format_table(
                ["worker", "jobs executed"],
                [[name, str(count)] for name, count in sorted(result.jobs_per_worker.items())],
                title=f"\n{scheduler}: job distribution (w1 fast, w2 slow)",
            )
        )

    print(
        format_table(
            ["scheduler", "wall time [s]", "misses", "hits", "data [MB]"],
            rows,
            title="Threaded engine: 120 jobs on 5 real worker threads",
        )
    )
    for table in distributions:
        print(table)


if __name__ == "__main__":
    main()
