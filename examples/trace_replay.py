"""Replay your own workload trace with statistical comparison.

Demonstrates the downstream-user path end to end:

1. export a paper workload as an editable JSON trace,
2. reload it (as you would with your own production trace),
3. race all locality-aware schedulers on it across several seeds,
4. report means, bootstrap confidence intervals and significance of the
   bidding-vs-baseline comparison -- not just bare numbers.

Run with::

    python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.cluster.profiles import profile_by_name
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.metrics.ascii_chart import bar_chart
from repro.metrics.report import format_table
from repro.metrics.stats import compare
from repro.schedulers.registry import make_scheduler
from repro.workload.generators import job_config_by_name
from repro.workload.replay import load_trace, save_trace

SEEDS = (1, 2, 3, 4, 5)


def run_trace(stream, scheduler_name, seed):
    """One 2-iteration warm run of the trace under one scheduler."""
    caches = None
    results = []
    for iteration in range(2):
        runtime = WorkflowRuntime(
            profile=profile_by_name("fast-slow"),
            stream=stream,
            scheduler=make_scheduler(scheduler_name),
            config=EngineConfig(seed=seed),
            initial_caches=caches,
            iteration=iteration,
        )
        results.append(runtime.run())
        caches = runtime.cache_snapshot()
    return sum(r.makespan_s for r in results)


def main() -> None:
    # 1-2. Export a paper workload and reload it as a user trace.
    _corpus, stream = job_config_by_name("80%_large").build(seed=99)
    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(stream, Path(tmp) / "my_workload.json")
        _corpus, replayed = load_trace(path)
    print(f"Replaying {len(replayed)} jobs from an exported JSON trace.\n")

    # 3. Race the schedulers across seeds.
    totals = {}
    for scheduler in ("baseline", "bidding", "matchmaking", "bar"):
        totals[scheduler] = [run_trace(replayed, scheduler, seed) for seed in SEEDS]

    means = [(name, sum(values) / len(values)) for name, values in totals.items()]
    means.sort(key=lambda pair: pair[1])
    print(bar_chart(means, title="Mean total time over 5 seeds (2 warm iterations)", unit="s"))

    # 4. Is bidding's win over the baseline more than seed noise?
    result = compare(totals["baseline"], totals["bidding"])
    lo, hi = result.speedup_ci
    print(
        format_table(
            ["statistic", "value"],
            [
                ["baseline mean +- std", f"{result.baseline_mean:.1f} +- {result.baseline_std:.1f} s"],
                ["bidding mean +- std", f"{result.candidate_mean:.1f} +- {result.candidate_std:.1f} s"],
                ["speedup", f"{result.speedup:.2f}x"],
                ["95% bootstrap CI", f"[{lo:.2f}x, {hi:.2f}x]"],
                ["rank-sum p-value", f"{result.pvalue:.4f}"],
                ["significant", str(result.significant)],
            ],
            title="\nBidding vs Baseline across seeds",
        )
    )


if __name__ == "__main__":
    main()
