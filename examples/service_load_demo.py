"""Open-loop load sweep: where is each scheduler's p99 knee?

Runs the service layer (:mod:`repro.serve`) under Poisson arrivals at
ramping rates and compares the Bidding Scheduler against the Crossflow
Baseline on tail latency and shed rate.  Open-loop behaviour is
textbook: below the cluster's service capacity p99 stays flat, and past
it the admission queue saturates, latency climbs to the queue-drain
bound and the controller starts shedding -- the *knee*.  Locality-aware
allocation moves the knee right: fewer redundant downloads mean more
capacity from the same five workers.

Run with::

    python examples/service_load_demo.py
"""

from repro import run_service
from repro.metrics.ascii_chart import grouped_bar_chart
from repro.metrics.report import format_table

RATES = [0.25, 0.5, 1.0, 1.5, 2.0]
DURATION_S = 300.0
SEED = 23


def run_one(scheduler: str, rate: float):
    # One call wires arrivals -> admission -> scheduler -> report; the
    # keyword overrides route themselves to the right config dataclass
    # (queue_cap -> admission, duration_s -> service, trace -> engine).
    return run_service(
        scheduler=scheduler,
        arrival="poisson",
        rate=rate,
        seed=SEED,
        duration_s=DURATION_S,
        queue_cap=64,
        trace=False,
    )


def main() -> None:
    reports = {
        (scheduler, rate): run_one(scheduler, rate)
        for scheduler in ("baseline", "bidding")
        for rate in RATES
    }
    rows = []
    for rate in RATES:
        for scheduler in ("baseline", "bidding"):
            report = reports[(scheduler, rate)]
            rows.append(
                [
                    f"{rate:.2f}",
                    scheduler,
                    f"{report.latency_p50_s:.1f}",
                    f"{report.latency_p99_s:.1f}",
                    f"{report.shed_rate:.1%}",
                    f"{report.throughput_jobs_per_s:.2f}",
                ]
            )
    print(
        format_table(
            ["rate [/s]", "scheduler", "p50 [s]", "p99 [s]", "shed", "tput [/s]"],
            rows,
            title=f"Poisson load ramp, {DURATION_S:.0f}s windows, 5 workers (seed {SEED})",
        )
    )
    print()
    print(
        grouped_bar_chart(
            [
                (
                    f"{rate:.2f}/s",
                    [
                        (scheduler, reports[(scheduler, rate)].latency_p99_s)
                        for scheduler in ("baseline", "bidding")
                    ],
                )
                for rate in RATES
            ],
            title="p99 latency vs offered load (the knee)",
            unit="s",
        )
    )
    print(
        "\nReading the knee: both schedulers ride flat while arrivals fit the\n"
        "cluster's service rate; past saturation the bounded queue pins p99 at\n"
        "its drain time and overload spills into the shed column instead.\n"
        "Bidding's locality keeps per-job service time lower, so its curve\n"
        "bends later and it sheds less at every overloaded rate."
    )


if __name__ == "__main__":
    main()
