"""A second domain on the same engine: distributed ETL over dataset shards.

The paper's motivating workload is repository mining, but Crossflow's
model -- typed jobs flowing through tasks, workers with data affinity --
is general.  This example builds a three-stage ETL pipeline from the
public API:

    ShardRegistry (source)  ->  FeatureExtractor  ->  StatsAggregator

* a *shard* is a chunk of a large dataset (the locality unit: workers
  cache shards like they cache repository clones),
* each extraction pass re-reads its shard (daily feature jobs over the
  same shards -- heavy reuse, exactly where locality scheduling pays),
* the aggregator folds per-shard statistics on the master.

Run with::

    python examples/etl_pipeline.py
"""

from repro.cluster.profiles import all_equal
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.metrics.report import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.rng import substream
from repro.workload.job import Job, JobStream
from repro.workload.pipeline import Pipeline, Task

SEED = 77
N_SHARDS = 24
SHARD_MB = (200.0, 800.0)  # uniform range
PASSES = 3  # feature passes over the same shards (e.g. 3 model versions)


def build_workload():
    """Shards + one extraction job per (pass, shard)."""
    rng = substream(SEED, "shards")
    shard_sizes = {
        f"shard-{index:03d}": float(rng.uniform(*SHARD_MB)) for index in range(N_SHARDS)
    }
    jobs = []
    for pass_index in range(PASSES):
        for shard_id, size in shard_sizes.items():
            jobs.append(
                Job(
                    job_id=f"extract-p{pass_index}-{shard_id}",
                    task="FeatureExtractor",
                    repo_id=shard_id,  # the data-affinity key
                    size_mb=size,
                    base_compute_s=2.0,
                    payload=(pass_index, shard_id),
                )
            )
    stream = JobStream.poisson(
        jobs, 1.0, substream(SEED, "arrivals"), name="etl-features"
    )
    return shard_sizes, stream


def build_pipeline(stats):
    def extractor_handle(job):
        pass_index, shard_id = job.payload
        return [
            Job(
                job_id=f"stats-{job.job_id}",
                task="StatsAggregator",
                payload=(pass_index, shard_id, job.size_mb),
            )
        ]

    def aggregator_handle(job):
        pass_index, _shard_id, size_mb = job.payload
        bucket = stats.setdefault(pass_index, {"shards": 0, "mb": 0.0})
        bucket["shards"] += 1
        bucket["mb"] += size_mb
        return []

    pipeline = Pipeline(name="etl")
    pipeline.add_task(
        Task(
            name="FeatureExtractor",
            consumes=("ExtractionJob",),
            produces=("ShardStats",),
            handle=extractor_handle,
        )
    )
    pipeline.add_task(
        Task(
            name="StatsAggregator",
            consumes=("ShardStats",),
            handle=aggregator_handle,
            on_master=True,
        )
    )
    pipeline.connect("ExtractionJob", None, "FeatureExtractor")
    pipeline.connect("ShardStats", "FeatureExtractor", "StatsAggregator")
    pipeline.validate()
    return pipeline


def main() -> None:
    shard_sizes, stream = build_workload()
    total_shard_mb = sum(shard_sizes.values())
    print(
        f"{N_SHARDS} shards ({total_shard_mb:.0f} MB), {PASSES} feature passes "
        f"= {len(stream)} extraction jobs\n"
    )

    rows = []
    for scheduler in ("round-robin", "baseline", "bidding"):
        stats: dict = {}
        runtime = WorkflowRuntime(
            profile=all_equal(),
            stream=stream,
            scheduler=make_scheduler(scheduler),
            pipeline=build_pipeline(stats),
            config=EngineConfig(seed=SEED),
        )
        result = runtime.run()
        redundancy = result.data_load_mb / total_shard_mb
        rows.append(
            [
                scheduler,
                f"{result.makespan_s:.0f}",
                str(result.cache_misses),
                f"{result.data_load_mb:.0f}",
                f"{redundancy:.2f}x",
            ]
        )
        # The output is identical regardless of scheduler.
        assert all(bucket["shards"] == N_SHARDS for bucket in stats.values())

    print(
        format_table(
            ["scheduler", "makespan [s]", "shard fetches", "MB moved", "vs corpus size"],
            rows,
            title="ETL feature extraction: 3 passes over 24 shards, 5 equal workers",
        )
    )
    print(
        "\nPerfect locality would fetch each shard once (1.00x corpus size); "
        "bidding comes closest by routing repeat passes to shard holders."
    )


if __name__ == "__main__":
    main()
