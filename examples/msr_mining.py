"""The paper's motivating scenario: mining co-occurring NPM libraries.

Builds the full Figure-1 pipeline -- library stream -> GitHub search ->
repository cloning/analysis -> co-occurrence aggregation -- over a
synthetic corpus of large GitHub repositories, runs it under the
Bidding Scheduler, and prints:

* the workflow's actual *output* (the most co-occurring library pairs),
* the locality metrics that motivated the scheduler in the first place.

Run with::

    python examples/msr_mining.py
"""

from repro.cluster.profiles import fast_slow
from repro.data.github import GitHubService
from repro.data.repository import Repository, RepositoryCorpus
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.metrics.report import format_table
from repro.schedulers.registry import make_scheduler
from repro.sim.rng import substream
from repro.workload.msr import (
    MSRPipelineSpec,
    build_msr_pipeline,
    library_stream,
)

SEED = 2023
LIBRARIES = ("lodash", "react", "axios", "express", "chalk", "webpack", "vue", "jquery")


def build_corpus(seed: int, n: int = 80) -> RepositoryCorpus:
    """A small synthetic population of favoured large-scale repositories."""
    rng = substream(seed, "corpus")
    corpus = RepositoryCorpus()
    for index in range(n):
        corpus.add(
            Repository(
                repo_id=f"gh-{index:03d}",
                size_mb=float(rng.uniform(500.0, 2000.0)),
                stars=int(rng.integers(5000, 80_000)),
                forks=int(rng.integers(5000, 40_000)),
            )
        )
    return corpus


def main() -> None:
    spec = MSRPipelineSpec(libraries=LIBRARIES, query_min_size_mb=500.0)
    corpus = build_corpus(SEED)
    stream = library_stream(spec, mean_interarrival_s=10.0, rng=substream(SEED, "arrivals"))

    matrix_holder = {}

    def pipeline_factory(sim):
        github = GitHubService(sim, corpus, match_fraction=0.3, seed=SEED)
        pipeline, matrix = build_msr_pipeline(github, spec)
        matrix_holder["matrix"] = matrix
        return pipeline

    runtime = WorkflowRuntime(
        profile=fast_slow(),
        stream=stream,
        scheduler=make_scheduler("bidding"),
        pipeline_factory=pipeline_factory,
        config=EngineConfig(seed=SEED),
    )
    result = runtime.run()
    matrix = matrix_holder["matrix"]

    print(
        format_table(
            ["library pair", "co-occurrences"],
            [[f"{a} + {b}", str(count)] for (a, b), count in matrix.top(8)],
            title="Most co-occurring NPM libraries in favoured large-scale repositories",
        )
    )
    print(
        f"\nWorkflow: {result.jobs_completed} jobs in {result.makespan_s:.1f}s "
        f"simulated -- {result.cache_misses} clones ({result.data_load_mb:.0f} MB "
        f"downloaded), {result.cache_hits} cache hits."
    )
    print(
        format_table(
            ["worker", "jobs", "MB downloaded"],
            [
                [name, str(result.per_worker_jobs.get(name, 0)), f"{mb:.0f}"]
                for name, mb in sorted(result.per_worker_mb.items())
            ],
            title="\nPer-worker breakdown (w1 is 4x fast, w2 is 4x slow)",
        )
    )


if __name__ == "__main__":
    main()
