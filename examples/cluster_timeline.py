"""Visualise cluster timelines: where does the time actually go?

Runs the same heterogeneous workload under the centralized round-robin
policy and the Bidding Scheduler with tracing enabled, then renders
per-worker execution timelines (``#`` = executing, ``.`` = idle) plus
utilization numbers.  The round-robin chart shows the slow worker (w1)
dragging a long straggler tail while the rest idle -- the Figure 2
phenomenon -- and the bidding chart shows the tail gone.

Run with::

    python examples/cluster_timeline.py
"""

from repro.cluster.profiles import one_slow
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.metrics.analysis import ascii_gantt, summarize
from repro.schedulers.registry import make_scheduler
from repro.workload.generators import job_config_by_name


def main() -> None:
    _corpus, stream = job_config_by_name("all_diff_large").build(seed=17)
    for scheduler in ("round-robin", "bidding"):
        runtime = WorkflowRuntime(
            profile=one_slow(),
            stream=stream,
            scheduler=make_scheduler(scheduler),
            config=EngineConfig(seed=17, trace=True),
        )
        result = runtime.run()
        analysis = summarize(runtime.metrics.trace, result.makespan_s)
        print(f"\n=== {scheduler}: makespan {result.makespan_s:.0f}s ===")
        print(ascii_gantt(runtime.metrics.trace, result.makespan_s))
        utilization = ", ".join(
            f"{name}={value:.0%}" for name, value in sorted(analysis.utilization.items())
        )
        print(f"utilization: {utilization}")
        print(
            f"imbalance (max/min): {analysis.utilization_imbalance:.2f}; "
            f"mean allocation delay: {analysis.allocation_delay.mean:.2f}s"
        )


if __name__ == "__main__":
    main()
