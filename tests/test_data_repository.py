"""Unit tests for repositories, the corpus and the GitHub model."""

import numpy as np
import pytest

from repro.data.github import GitHubService, SearchQuery
from repro.data.repository import Repository, RepositoryCorpus
from repro.data.sizes import equal_mixture
from repro.sim import Simulator


class TestRepository:
    def test_band_name(self):
        assert Repository("r", 10.0).band_name == "small"
        assert Repository("r", 100.0).band_name == "medium"
        assert Repository("r", 800.0).band_name == "large"

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Repository("r", 0.0)

    def test_invalid_popularity_rejected(self):
        with pytest.raises(ValueError):
            Repository("r", 1.0, stars=-1)


class TestCorpus:
    def test_add_and_get(self):
        corpus = RepositoryCorpus()
        repo = Repository("r1", 10.0)
        corpus.add(repo)
        assert corpus.get("r1") is repo
        assert "r1" in corpus
        assert len(corpus) == 1

    def test_duplicate_rejected(self):
        corpus = RepositoryCorpus([Repository("r1", 10.0)])
        with pytest.raises(ValueError):
            corpus.add(Repository("r1", 20.0))

    def test_total_mb(self):
        corpus = RepositoryCorpus([Repository("a", 10.0), Repository("b", 5.0)])
        assert corpus.total_mb == pytest.approx(15.0)

    def test_generate_count_and_determinism(self):
        a = RepositoryCorpus.generate(50, equal_mixture(), np.random.default_rng(1))
        b = RepositoryCorpus.generate(50, equal_mixture(), np.random.default_rng(1))
        assert len(a) == 50
        assert [r.size_mb for r in a] == [r.size_mb for r in b]

    def test_generate_respects_stars_range(self):
        corpus = RepositoryCorpus.generate(
            100, equal_mixture(), np.random.default_rng(2), stars_range=(1000, 2000)
        )
        assert all(1000 <= repo.stars <= 2000 for repo in corpus)

    def test_filter(self):
        corpus = RepositoryCorpus(
            [
                Repository("big-popular", 800.0, stars=9000, forks=9000),
                Repository("big-obscure", 800.0, stars=10, forks=10),
                Repository("small-popular", 5.0, stars=9000, forks=9000),
            ]
        )
        hits = corpus.filter(min_size_mb=500.0, min_stars=5000, min_forks=5000)
        assert [r.repo_id for r in hits] == ["big-popular"]

    def test_generate_invalid_args(self):
        with pytest.raises(ValueError):
            RepositoryCorpus.generate(-1, equal_mixture(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            RepositoryCorpus.generate(
                1, equal_mixture(), np.random.default_rng(0), stars_range=(0, 10)
            )


class TestGitHubService:
    @pytest.fixture
    def service(self):
        sim = Simulator()
        corpus = RepositoryCorpus.generate(
            100, equal_mixture(), np.random.default_rng(3)
        )
        return sim, GitHubService(sim, corpus, match_fraction=0.5, seed=7)

    def test_evaluate_is_pure_and_deterministic(self, service):
        _sim, github = service
        query = SearchQuery(library="lodash", min_stars=5000)
        assert [r.repo_id for r in github.evaluate(query)] == [
            r.repo_id for r in github.evaluate(query)
        ]

    def test_different_libraries_different_results(self, service):
        _sim, github = service
        a = {r.repo_id for r in github.evaluate(SearchQuery(library="lodash"))}
        b = {r.repo_id for r in github.evaluate(SearchQuery(library="react"))}
        assert a != b

    def test_results_sorted_by_stars(self, service):
        _sim, github = service
        results = github.evaluate(SearchQuery(library="lodash"))
        stars = [r.stars for r in results]
        assert stars == sorted(stars, reverse=True)

    def test_search_process_costs_latency(self, service):
        sim, github = service

        def proc(sim, github):
            results = yield sim.process(github.search(SearchQuery(library="lodash")))
            return (sim.now, len(results))

        elapsed, count = sim.run(sim.process(proc(sim, github)))
        assert count > 0
        assert elapsed > 0.0

    def test_pagination_costs_more_requests(self):
        sim = Simulator()
        corpus = RepositoryCorpus.generate(
            200, equal_mixture(), np.random.default_rng(4)
        )
        github = GitHubService(sim, corpus, match_fraction=1.0, seed=1)

        def proc(sim, github):
            yield sim.process(github.search(SearchQuery(library="x", per_page=30)))

        sim.run(sim.process(proc(sim, github)))
        assert github.request_count == -(-200 // 30)

    def test_rate_limit_delays(self):
        sim = Simulator()
        corpus = RepositoryCorpus([Repository("r", 10.0, stars=9000, forks=9000)])
        github = GitHubService(
            sim, corpus, request_latency=0.0, rate_limit_per_minute=2, match_fraction=1.0
        )

        def proc(sim, github):
            for _ in range(3):
                yield sim.process(github.search(SearchQuery(library="x")))
            return sim.now

        finished = sim.run(sim.process(proc(sim, github)))
        # Third request must wait for the 60 s window.
        assert finished >= 60.0

    def test_match_fraction_validated(self):
        sim = Simulator()
        corpus = RepositoryCorpus()
        with pytest.raises(ValueError):
            GitHubService(sim, corpus, match_fraction=0.0)
        with pytest.raises(ValueError):
            GitHubService(sim, corpus, rate_limit_per_minute=0)
        with pytest.raises(ValueError):
            GitHubService(sim, corpus, request_latency=-0.1)

    def test_match_fraction_controls_hit_rate(self):
        sim = Simulator()
        corpus = RepositoryCorpus.generate(
            400, equal_mixture(), np.random.default_rng(5)
        )
        sparse = GitHubService(sim, corpus, match_fraction=0.1, seed=1)
        dense = GitHubService(sim, corpus, match_fraction=0.9, seed=1)
        query = SearchQuery(library="lodash")
        assert len(sparse.evaluate(query)) < len(dense.evaluate(query))
