"""Unit tests for the event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Event, EventFailed, Simulator, Timeout


@pytest.fixture
def sim():
    return Simulator()


class TestEventLifecycle:
    def test_fresh_event_is_untriggered(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_marks_triggered(self, sim):
        event = sim.event().succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_returns_self(self, sim):
        event = sim.event()
        assert event.succeed() is event

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(RuntimeError):
            _ = sim.event().value

    def test_ok_before_trigger_raises(self, sim):
        with pytest.raises(RuntimeError):
            _ = sim.event().ok

    def test_double_succeed_raises(self, sim):
        event = sim.event().succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_then_succeed_raises(self, sim):
        event = sim.event().fail(ValueError("boom")).defuse()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_failed_value_raises_eventfailed(self, sim):
        event = sim.event().fail(ValueError("boom")).defuse()
        with pytest.raises(EventFailed):
            _ = event.value

    def test_exception_property(self, sim):
        cause = ValueError("boom")
        event = sim.event().fail(cause).defuse()
        assert event.exception is cause

    def test_exception_is_none_on_success(self, sim):
        assert sim.event().succeed().exception is None

    def test_processed_after_step(self, sim):
        event = sim.event().succeed()
        sim.run()
        assert event.processed

    def test_callback_runs_on_processing(self, sim):
        seen = []
        event = sim.event()
        event.add_callback(seen.append)
        event.succeed("x")
        sim.run()
        assert seen == [event]

    def test_callback_on_processed_event_runs_immediately(self, sim):
        event = sim.event().succeed()
        sim.run()
        seen = []
        event.add_callback(seen.append)
        assert seen == [event]

    def test_unhandled_failure_propagates_from_run(self, sim):
        sim.event().fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_defused_failure_does_not_propagate(self, sim):
        sim.event().fail(ValueError("boom")).defuse()
        sim.run()  # no raise

    def test_trigger_mirrors_success(self, sim):
        source = sim.event().succeed("payload")
        mirror = sim.event()
        mirror.trigger(source)
        assert mirror.value == "payload"

    def test_trigger_mirrors_failure(self, sim):
        cause = RuntimeError("x")
        source = sim.event().fail(cause).defuse()
        mirror = sim.event().defuse()
        mirror.trigger(source)
        assert mirror.exception is cause


class TestTimeout:
    def test_fires_at_delay(self, sim):
        timeout = sim.timeout(5.0)
        sim.run()
        assert timeout.processed
        assert sim.now == 5.0

    def test_carries_value(self, sim):
        timeout = sim.timeout(1.0, value="done")
        sim.run()
        assert timeout.value == "done"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_at_now(self, sim):
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.processed
        assert sim.now == 0.0

    def test_cannot_be_succeeded_manually(self, sim):
        timeout = sim.timeout(1.0)
        with pytest.raises(RuntimeError):
            timeout.succeed()
        with pytest.raises(RuntimeError):
            timeout.fail(ValueError())
        sim.run()

    def test_ordering_of_two_timeouts(self, sim):
        order = []
        sim.timeout(2.0).add_callback(lambda e: order.append("late"))
        sim.timeout(1.0).add_callback(lambda e: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_equal_time_fifo_by_creation(self, sim):
        order = []
        sim.timeout(1.0).add_callback(lambda e: order.append("first"))
        sim.timeout(1.0).add_callback(lambda e: order.append("second"))
        sim.run()
        assert order == ["first", "second"]


class TestConditions:
    def test_allof_waits_for_all(self, sim):
        t1, t2 = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
        condition = AllOf(sim, [t1, t2])
        sim.run()
        assert condition.processed
        assert condition.value == {t1: "a", t2: "b"}

    def test_allof_empty_is_immediate(self, sim):
        condition = AllOf(sim, [])
        assert condition.triggered
        assert condition.value == {}

    def test_anyof_fires_on_first(self, sim):
        t1, t2 = sim.timeout(1.0, "fast"), sim.timeout(5.0, "slow")

        def check(sim, condition):
            value = yield condition
            return (sim.now, list(value.values()))

        proc = sim.process(check(sim, AnyOf(sim, [t1, t2])))
        assert sim.run(proc) == (1.0, ["fast"])

    def test_anyof_with_already_triggered_event(self, sim):
        done = sim.event().succeed("now")
        sim.run()
        condition = AnyOf(sim, [done, sim.timeout(10.0)])
        assert condition.triggered

    def test_allof_fails_if_member_fails(self, sim):
        bad = sim.event()
        condition = AllOf(sim, [sim.timeout(1.0), bad]).defuse()
        bad.fail(ValueError("member"))
        sim.run()
        assert isinstance(condition.exception, ValueError)

    def test_condition_rejects_foreign_events(self, sim):
        other = Simulator()
        with pytest.raises(ValueError):
            AllOf(sim, [sim.timeout(1.0), other.timeout(1.0)])

    def test_allof_value_preserves_event_mapping(self, sim):
        events = [sim.timeout(i + 1.0, chr(97 + i)) for i in range(4)]
        condition = AllOf(sim, events)
        sim.run()
        assert [condition.value[e] for e in events] == ["a", "b", "c", "d"]
