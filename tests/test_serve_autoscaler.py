"""The autoscaler's crash-replacement path: cooldown bypass.

The control loop's first branch fires when the active pool has fallen
*below* ``min_workers`` -- something only faults can cause -- and
replaces the lost capacity immediately, explicitly bypassing the
cooldown that paces every load-driven action.  These tests pin that
contract from both directions: under-floor replacement ignores an
active cooldown, while load-driven actions still respect it (including
the cooldown a replacement itself starts).
"""

import pytest

from repro import FaultPlan, RecoveryConfig, run_service
from repro.faults import WorkerCrash
from repro.serve import Autoscaler, AutoscalerConfig


class StubService:
    """Minimal stand-in exposing exactly what the autoscaler reads."""

    class _Master:
        def __init__(self, names):
            self.active_workers = list(names)
            self.outstanding = 0

    class _Admission:
        depth = 0

    class _Node:
        def __init__(self, busy):
            self.is_idle = not busy

    def __init__(self, workers=4, busy=True):
        self.master = self._Master([f"w{i}" for i in range(workers)])
        self.admission = self._Admission()
        self.workers = {name: self._Node(busy) for name in self.master.active_workers}
        self.closed = False
        self.actions = []

    def scale_up(self):
        name = f"e{len(self.actions)}"
        self.master.active_workers.append(name)
        self.workers[name] = self._Node(True)
        self.actions.append("up")

    def crash(self, count=1):
        for _ in range(count):
            victim = self.master.active_workers.pop()
            del self.workers[victim]

    def scale_down(self):
        victim = self.master.active_workers.pop()
        del self.workers[victim]
        self.actions.append("down")


class TestCrashReplacementBypassesCooldown:
    def test_below_floor_replaces_despite_active_cooldown(self):
        service = StubService(workers=3)
        scaler = Autoscaler(
            service, AutoscalerConfig(min_workers=3, cooldown_s=60.0)
        )
        # A scaling action at t=100 arms the 60 s cooldown...
        scaler._last_action_at = 100.0
        service.crash()
        # ...yet the very next tick, deep inside the window, replaces.
        scaler._evaluate(101.0)
        assert service.actions == ["up"]
        assert len(service.master.active_workers) == 3
        assert scaler.scale_ups == 1

    def test_one_replacement_per_tick_until_floor_restored(self):
        service = StubService(workers=4)
        scaler = Autoscaler(
            service, AutoscalerConfig(min_workers=4, cooldown_s=60.0)
        )
        scaler._last_action_at = 0.0
        service.crash(count=3)
        ticks = []
        for step in range(5):
            scaler._evaluate(1.0 + step)
            ticks.append(len(service.master.active_workers))
        # 1 -> 2 -> 3 -> 4, then the floor holds and nothing more fires.
        assert ticks == [2, 3, 4, 4, 4]
        assert service.actions == ["up", "up", "up"]

    def test_replacement_rearms_cooldown_for_load_actions(self):
        service = StubService(workers=2, busy=True)
        scaler = Autoscaler(
            service,
            AutoscalerConfig(
                min_workers=2, max_workers=10, scale_up_backlog=3.0, cooldown_s=30.0
            ),
        )
        service.crash()
        service.master.outstanding = 1000  # overload throughout
        scaler._evaluate(10.0)  # crash replacement (bypass path)
        assert service.actions == ["up"]
        # Load-driven growth is wanted but must now wait out the
        # cooldown the replacement just started.
        scaler._evaluate(15.0)
        assert service.actions == ["up"]
        scaler._evaluate(40.1)  # 30 s after the replacement: allowed
        assert service.actions == ["up", "up"]

    def test_at_floor_cooldown_still_gates(self):
        # Control case: the bypass is *only* for under-floor fleets.
        service = StubService(workers=2, busy=True)
        scaler = Autoscaler(
            service,
            AutoscalerConfig(
                min_workers=2, max_workers=10, scale_up_backlog=3.0, cooldown_s=30.0
            ),
        )
        scaler._last_action_at = 0.0
        service.master.outstanding = 1000
        scaler._evaluate(10.0)  # overloaded, at floor, inside cooldown
        assert service.actions == []


class TestCrashReplacementEndToEnd:
    @pytest.mark.faults
    def test_crashed_floor_capacity_is_replaced_mid_run(self):
        # Kill two of five workers early with no recovery renewals: the
        # only way the fleet can climb back to the floor is the
        # autoscaler's replacement branch, whose cooldown (longer than
        # the run) would block every load-driven action.
        plan = FaultPlan(
            crashes=(
                WorkerCrash(worker="w1", at_s=5.0),
                WorkerCrash(worker="w2", at_s=6.0),
            ),
            recovery=RecoveryConfig(max_redispatches=4),
        )
        report = run_service(
            scheduler="bidding",
            rate=1.0,
            seed=5,
            duration_s=60.0,
            faults=plan,
            autoscale=True,
            min_workers=5,
            max_workers=8,
            cooldown_s=600.0,
            check_interval_s=2.0,
        )
        assert report.crashes == 2
        assert report.scale_ups >= 2
        assert report.workers_final >= 5
        assert report.completed + report.failed == report.admitted
