"""Large-scale smoke tests: the engine at 5x fleet / 10x workflow size.

These guard the "larger-scale evaluation" path: nothing in the engine
may assume the paper's 5-worker, 120-job scale.
"""

import dataclasses

import pytest

from repro.cluster.profiles import BASE_NETWORK_MBPS, BASE_RW_MBPS, WorkerProfile
from repro.cluster.worker_spec import WorkerSpec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import make_scheduler
from repro.workload.generators import job_config_by_name


def big_profile(n=25):
    return WorkerProfile(
        f"equal-{n}",
        tuple(
            WorkerSpec(name=f"w{i:02d}", network_mbps=BASE_NETWORK_MBPS, rw_mbps=BASE_RW_MBPS)
            for i in range(n)
        ),
    )


def big_stream(n_jobs=1200, seed=11):
    config = dataclasses.replace(
        job_config_by_name("80%_large"), n_jobs=n_jobs, mean_interarrival_s=0.2
    )
    return config.build(seed=seed)[1]


@pytest.mark.parametrize("scheduler", ["bidding", "baseline", "spark"])
def test_25_workers_1200_jobs_complete(scheduler):
    runtime = WorkflowRuntime(
        profile=big_profile(25),
        stream=big_stream(1200),
        scheduler=make_scheduler(scheduler),
        config=EngineConfig(
            seed=11,
            noise_kind="lognormal",
            noise_params={"sigma": 0.25},
            topology=TopologyConfig(),
            trace=False,
        ),
    )
    result = runtime.run()
    assert result.jobs_completed == 1200
    assert result.cache_hits + result.cache_misses == 1200
    # Every worker got something to do under any reasonable policy.
    active = sum(1 for count in result.per_worker_jobs.values() if count > 0)
    assert active >= 20


def test_contest_accounting_scales():
    runtime = WorkflowRuntime(
        profile=big_profile(25),
        stream=big_stream(600),
        scheduler=make_scheduler("bidding"),
        config=EngineConfig(seed=7, trace=False),
    )
    runtime.run()
    metrics = runtime.metrics
    assert metrics.contests_opened == 600
    closed = (
        metrics.contests_closed_full
        + metrics.contests_closed_fast
        + metrics.contests_closed_timeout
        + metrics.contests_fallback
    )
    assert closed == 600
