"""Unit tests for deterministic stream splitting."""

import numpy as np
import pytest

from repro.sim import RandomStreams, split_seed, substream


class TestSplitSeed:
    def test_deterministic(self):
        assert split_seed(42, "a", 1) == split_seed(42, "a", 1)

    def test_different_keys_differ(self):
        assert split_seed(42, "a") != split_seed(42, "b")

    def test_different_seeds_differ(self):
        assert split_seed(1, "a") != split_seed(2, "a")

    def test_key_order_matters(self):
        assert split_seed(42, "a", "b") != split_seed(42, "b", "a")

    def test_mixed_key_types(self):
        assert split_seed(7, "worker", 3) == split_seed(7, "worker", "3")

    def test_result_is_64_bit(self):
        for seed in range(20):
            child = split_seed(seed, "x")
            assert 0 <= child < 2**64

    def test_no_separator_collision(self):
        """Keys ("ab", "c") and ("a", "bc") must produce different seeds."""
        assert split_seed(1, "ab", "c") != split_seed(1, "a", "bc")


class TestSubstream:
    def test_same_path_same_draws(self):
        a = substream(9, "noise", "w1").random(5)
        b = substream(9, "noise", "w1").random(5)
        assert np.array_equal(a, b)

    def test_different_paths_independent(self):
        a = substream(9, "noise", "w1").random(5)
        b = substream(9, "noise", "w2").random(5)
        assert not np.array_equal(a, b)


class TestRandomStreams:
    def test_get_memoises(self):
        streams = RandomStreams(5)
        assert streams.get("a") is streams.get("a")

    def test_distinct_keys_distinct_generators(self):
        streams = RandomStreams(5)
        assert streams.get("a") is not streams.get("b")

    def test_draws_advance_only_own_stream(self):
        streams = RandomStreams(5)
        streams.get("a").random(100)  # burn stream a
        fresh = RandomStreams(5)
        assert streams.get("b").random() == fresh.get("b").random()

    def test_fork_is_independent(self):
        parent = RandomStreams(5)
        child = parent.fork("sub")
        assert parent.get("x").random() != child.get("x").random()

    def test_iter_seeds_distinct(self):
        streams = RandomStreams(5)
        seeds = list(streams.iter_seeds("reps", 10))
        assert len(set(seeds)) == 10

    def test_iter_seeds_reproducible(self):
        a = list(RandomStreams(5).iter_seeds("reps", 4))
        b = list(RandomStreams(5).iter_seeds("reps", 4))
        assert a == b
