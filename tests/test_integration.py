"""Cross-module integration tests: full workflows, paper invariants."""

import pytest

from repro import compare_schedulers, run_workflow
from repro.cluster.profiles import profile_by_name
from repro.data.github import GitHubService
from repro.data.repository import Repository, RepositoryCorpus
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.experiments.configs import JOB_CONFIG_NAMES, PROFILE_NAMES
from repro.experiments.runner import CellSpec, run_cell
from repro.schedulers.registry import make_scheduler
from repro.sim.rng import substream
from repro.workload.generators import job_config_by_name
from repro.workload.msr import MSRPipelineSpec, build_msr_pipeline, library_stream


class TestFullMatrixSmoke:
    """Every (workload, profile) cell terminates for both paper schedulers."""

    @pytest.mark.parametrize("workload", JOB_CONFIG_NAMES)
    @pytest.mark.parametrize("scheduler", ["baseline", "bidding"])
    def test_cell_terminates(self, workload, scheduler):
        spec = CellSpec(
            scheduler=scheduler,
            workload=workload,
            profile="all-equal",
            seed=11,
            iterations=1,
        )
        results = run_cell(spec)
        assert results[0].jobs_completed == 120

    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_profiles_terminate(self, profile):
        spec = CellSpec(
            scheduler="bidding",
            workload="80%_small",
            profile=profile,
            seed=11,
            iterations=1,
        )
        assert run_cell(spec)[0].jobs_completed == 120


class TestIdenticalWorkAcrossSchedulers:
    def test_same_jobs_processed_by_all_schedulers(self):
        results = compare_schedulers(
            workload="80%_large",
            profile="all-equal",
            seed=13,
            schedulers=("baseline", "bidding", "spark", "random"),
            iterations=1,
        )
        completions = {name: runs[0].jobs_completed for name, runs in results.items()}
        assert set(completions.values()) == {120}

    def test_cold_misses_identical_for_all_different_workload(self):
        """With every job on a distinct repository and cold caches, every
        scheduler must miss exactly once per job."""
        results = compare_schedulers(
            workload="all_diff_equal",
            profile="all-equal",
            seed=17,
            schedulers=("baseline", "bidding", "spark"),
            iterations=1,
        )
        for runs in results.values():
            assert runs[0].cache_misses == 120


class TestPaperShapeInvariants:
    """Small-scale versions of the headline comparative claims."""

    def test_bidding_beats_baseline_on_repetitive_warm_workload(self):
        results = compare_schedulers(
            workload="80%_large", profile="all-equal", seed=19, iterations=3
        )
        baseline_mean = sum(r.makespan_s for r in results["baseline"]) / 3
        bidding_mean = sum(r.makespan_s for r in results["bidding"]) / 3
        assert bidding_mean < baseline_mean

    def test_bidding_reduces_data_load(self):
        results = compare_schedulers(
            workload="80%_large", profile="all-equal", seed=19, iterations=3
        )
        assert sum(r.data_load_mb for r in results["bidding"]) < sum(
            r.data_load_mb for r in results["baseline"]
        )

    def test_bidding_reduces_cache_misses(self):
        results = compare_schedulers(
            workload="all_diff_equal", profile="all-equal", seed=19, iterations=3
        )
        assert sum(r.cache_misses for r in results["bidding"]) < sum(
            r.cache_misses for r in results["baseline"]
        )

    def test_warm_iterations_get_faster_under_bidding(self):
        runs = run_workflow(
            scheduler="bidding", workload="80%_large", profile="all-equal", seed=23
        )
        assert runs[1].makespan_s < runs[0].makespan_s
        assert runs[2].cache_misses <= runs[1].cache_misses

    def test_one_slow_profile_amplifies_bidding_advantage(self):
        def mean_ratio(profile):
            results = compare_schedulers(
                workload="all_diff_large", profile=profile, seed=29, iterations=3
            )
            baseline = sum(r.makespan_s for r in results["baseline"])
            bidding = sum(r.makespan_s for r in results["bidding"])
            return baseline / bidding

        assert mean_ratio("one-slow") > 1.0


class TestMSRPipelineEndToEnd:
    def build(self, scheduler_name, seed=31):
        spec = MSRPipelineSpec(
            libraries=("lodash", "react", "axios"), query_min_size_mb=500.0
        )
        rng = substream(seed, "corpus")
        corpus = RepositoryCorpus(
            [
                Repository(
                    f"r{i}",
                    float(rng.uniform(500.0, 1500.0)),
                    stars=9000,
                    forks=9000,
                )
                for i in range(30)
            ]
        )
        stream = library_stream(spec, mean_interarrival_s=2.0, rng=substream(seed, "arr"))
        holder = {}

        def factory(sim):
            github = GitHubService(sim, corpus, match_fraction=0.4, seed=seed)
            pipeline, matrix = build_msr_pipeline(github, spec)
            holder["matrix"] = matrix
            holder["github"] = github
            return pipeline

        runtime = WorkflowRuntime(
            profile=profile_by_name("all-equal"),
            stream=stream,
            scheduler=make_scheduler(scheduler_name),
            pipeline_factory=factory,
            config=EngineConfig(seed=seed),
        )
        return runtime, holder

    @pytest.mark.parametrize("scheduler", ["baseline", "bidding"])
    def test_pipeline_produces_cooccurrence_output(self, scheduler):
        runtime, holder = self.build(scheduler)
        result = runtime.run()
        matrix = holder["matrix"]
        # Every analysis job produced exactly one record.
        analysis_jobs = [
            job_id for job_id in runtime.master.assignments if job_id.startswith("analysis")
        ]
        assert matrix.records == len(analysis_jobs)
        assert result.jobs_completed > len(analysis_jobs)

    def test_both_schedulers_compute_identical_output(self):
        _runtime_a, holder_a = self.build("baseline")
        _runtime_b, holder_b = self.build("bidding")
        _runtime_a.run()
        _runtime_b.run()
        # Scheduling must never change the workflow's semantics.
        assert holder_a["matrix"].counts == holder_b["matrix"].counts

    def test_search_stage_used_the_api_model(self):
        runtime, holder = self.build("bidding")
        runtime.run()
        assert holder["github"].request_count >= 3  # one+ page per library


class TestWorkloadOverrides:
    def test_burst_override_applies_to_job_config(self):
        import dataclasses

        config = job_config_by_name("80%_small")
        burst = dataclasses.replace(config, mean_interarrival_s=0.0)
        _corpus, stream = burst.build(seed=37)
        assert all(arrival.at == 0.0 for arrival in stream)

    def test_override_flows_through_run_cell(self):
        spec = CellSpec(
            scheduler="round-robin",
            workload="all_small_strict",
            profile="all-equal",
            seed=37,
            iterations=1,
            workload_overrides=(("mean_interarrival_s", 0.0),),
        )
        burst_result = run_cell(spec)[0]
        streamed_result = run_cell(
            CellSpec(
                scheduler="round-robin",
                workload="all_small_strict",
                profile="all-equal",
                seed=37,
                iterations=1,
            )
        )[0]
        # The streamed variant is partly arrival-bound (~119 s horizon),
        # so submitting everything at t=0 must strictly shorten the run.
        assert burst_result.makespan_s < streamed_result.makespan_s
