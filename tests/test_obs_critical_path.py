"""Critical-path attribution: exact tiling, chain recovery, determinism."""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.metrics.trace import Trace
from repro.obs import (
    CATEGORIES,
    critical_path,
    job_breakdown,
    render_critical_path,
)
from repro.schedulers.registry import make_scheduler
from repro.workload.job import Job, JobStream
from repro.workload.msr import TASK_ANALYZER


def hand_trace():
    """One job with every lifecycle phase, hand-timed for exact asserts."""
    trace = Trace()
    trace.record(0.0, "submitted", "j1")
    trace.record(0.0, "announced", "j1")
    trace.record(1.0, "contest_closed", "j1")
    trace.record(1.5, "assigned", "j1", worker="w1")
    trace.record(3.0, "started", "j1", worker="w1")
    trace.record(3.0, "download_started", "j1", worker="w1")
    trace.record(5.0, "download_finished", "j1", worker="w1")
    trace.record(9.0, "completed", "j1", worker="w1")
    return trace


class TestJobBreakdown:
    def test_hand_timed_tiling(self):
        breakdown = job_breakdown(hand_trace(), "j1")
        assert breakdown.worker == "w1"
        assert breakdown.categories == pytest.approx(
            {
                "schedule": 0.5,  # 1.5 total minus the 1.0 contest overlap
                "contest": 1.0,
                "queue": 1.5,
                "transfer": 2.0,
                "execute": 4.0,
                "recovery": 0.0,
            }
        )
        assert sum(breakdown.categories.values()) == pytest.approx(breakdown.latency)

    def test_recovery_segment(self):
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        trace.record(1.0, "assigned", "j1", worker="w1")
        trace.record(2.0, "started", "j1", worker="w1")
        trace.record(3.0, "orphaned", "j1", worker="w1")
        trace.record(4.0, "redispatched", "j1")
        trace.record(4.5, "assigned", "j1", worker="w2")
        trace.record(5.0, "started", "j1", worker="w2")
        trace.record(7.0, "completed", "j1", worker="w2")
        breakdown = job_breakdown(trace, "j1")
        assert breakdown.worker == "w2"
        assert breakdown.categories["recovery"] == pytest.approx(1.0)
        # Both schedule stints (0->1 and 4->4.5) count.
        assert breakdown.categories["schedule"] == pytest.approx(1.5)
        assert breakdown.categories["queue"] == pytest.approx(1.5)
        assert sum(breakdown.categories.values()) == pytest.approx(7.0)

    def test_incomplete_job_is_none(self):
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        trace.record(1.0, "assigned", "j1", worker="w1")
        assert job_breakdown(trace, "j1") is None
        assert job_breakdown(trace, "missing") is None


class TestCriticalPath:
    def run_cell(self, scheduler="bidding", seed=5, n=10):
        runtime = WorkflowRuntime(
            profile=make_profile(make_spec("w1"), make_spec("w2"), make_spec("w3")),
            stream=JobStream.burst(
                [
                    Job(
                        job_id=f"j{i}",
                        task=TASK_ANALYZER,
                        repo_id=f"r{i % 3}",
                        size_mb=10.0,
                    )
                    for i in range(n)
                ]
            ),
            scheduler=make_scheduler(scheduler),
            config=EngineConfig(seed=seed, trace=True),
        )
        result = runtime.run()
        return result, runtime.metrics.trace

    @pytest.mark.parametrize("scheduler", ["bidding", "baseline", "spark"])
    def test_categories_tile_makespan_exactly(self, scheduler):
        result, trace = self.run_cell(scheduler)
        path = critical_path(trace)
        assert path is not None
        # The acceptance bound is 1e-6; the tiling is exact up to float
        # addition, so assert far tighter.
        assert sum(path.categories.values()) == pytest.approx(
            path.makespan, abs=1e-9
        )
        assert set(path.categories) == set(CATEGORIES)

    def test_chain_ends_at_last_completion_and_has_zero_slack(self):
        _, trace = self.run_cell()
        path = critical_path(trace)
        completions = {}
        for event in trace.events:
            if event.kind == "completed" and event.job_id not in completions:
                completions[event.job_id] = event.time
        tail = max(completions, key=lambda j: (completions[j], j))
        assert path.chain[-1] == tail
        assert path.slack[tail] == 0.0
        assert all(slack >= 0.0 for slack in path.slack.values())
        # Chain jobs are time-ordered and their breakdowns line up.
        assert [b.job_id for b in path.breakdowns] == list(path.chain)
        for earlier, later in zip(path.breakdowns, path.breakdowns[1:]):
            assert earlier.finished <= later.submitted + 1e-9

    def test_pipeline_children_chain_through_parents(self):
        # A hand trace where j2 is submitted at j1's completion instant:
        # the chain must recover j1 -> j2.
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        trace.record(1.0, "assigned", "j1", worker="w1")
        trace.record(1.0, "started", "j1", worker="w1")
        trace.record(4.0, "completed", "j1", worker="w1")
        trace.record(4.0, "submitted", "j2")
        trace.record(5.0, "assigned", "j2", worker="w2")
        trace.record(5.0, "started", "j2", worker="w2")
        trace.record(9.0, "completed", "j2", worker="w2")
        path = critical_path(trace)
        assert path.chain == ("j1", "j2")
        assert path.makespan == pytest.approx(9.0)
        assert path.categories["arrival"] == pytest.approx(0.0)
        assert sum(path.categories.values()) == pytest.approx(9.0, abs=1e-12)

    def test_deterministic_across_reruns(self):
        _, trace_a = self.run_cell(seed=9)
        _, trace_b = self.run_cell(seed=9)
        path_a = critical_path(trace_a)
        path_b = critical_path(trace_b)
        assert path_a.chain == path_b.chain
        assert path_a.categories == path_b.categories
        assert path_a.slack == path_b.slack

    def test_empty_and_incomplete_traces(self):
        assert critical_path(Trace()) is None
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        assert critical_path(trace) is None


class TestRender:
    def test_render_mentions_every_category_and_chain_job(self):
        _, trace = TestCriticalPath().run_cell()
        path = critical_path(trace)
        text = render_critical_path(path)
        for name in CATEGORIES:
            assert name in text
        for job_id in path.chain:
            assert job_id in text
        assert f"{path.makespan:.1f}" in text
