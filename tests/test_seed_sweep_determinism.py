"""Seed-sweep determinism: every scheduler, many seeds, run twice.

The golden fixture (``test_determinism_golden``) pins one seed against a
committed recording; this sweep instead checks the *property* -- the
same (scheduler, seed) cell produces bit-identical headline metrics on a
second run -- across 5 seeds per scheduler.  That is 80 full engine
runs, so the sweep is marked ``slow`` and excluded from tier-1; the
nightly CI job runs it with ``-m slow``.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import CellSpec, run_cell
from repro.schedulers.registry import SCHEDULERS

SEEDS = (3, 11, 29, 101, 977)
WORKLOAD = "80%_small"
PROFILE = "fast-slow"


def _fingerprint(seed: int, scheduler: str) -> list[tuple]:
    results = run_cell(
        CellSpec(
            scheduler=scheduler,
            workload=WORKLOAD,
            profile=PROFILE,
            seed=seed,
            iterations=1,
        )
    )
    # Exact equality on the floats is the point: any nondeterminism in
    # event ordering shows up as a last-ulp drift here.
    return [
        (
            result.iteration,
            result.makespan_s,
            result.cache_misses,
            result.cache_hits,
            result.data_load_mb,
            result.jobs_completed,
        )
        for result in results
    ]


@pytest.mark.slow
@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_seed_sweep_bit_identical(scheduler):
    for seed in SEEDS:
        first = _fingerprint(seed, scheduler)
        second = _fingerprint(seed, scheduler)
        assert first == second, (
            f"{scheduler} seed {seed}: two runs of the same cell diverged"
        )
