"""Unit tests for the pub/sub broker and topology."""

import numpy as np
import pytest

from repro.net.broker import Broker
from repro.net.topology import Topology, TopologyConfig
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestBroker:
    def test_publish_reaches_all_subscribers(self, sim):
        broker = Broker(sim)
        subs = [broker.subscribe("jobs", f"w{i}") for i in range(3)]
        count = broker.publish("jobs", {"id": 1})
        sim.run()
        assert count == 3
        assert all(len(sub.queue) == 1 for sub in subs)

    def test_publish_to_empty_topic(self, sim):
        broker = Broker(sim)
        assert broker.publish("nobody", "msg") == 0

    def test_delivery_latency(self, sim):
        broker = Broker(sim, base_latency=0.1)
        sub = broker.subscribe("t", "w", latency=0.4)
        arrival = []

        def consumer(sim, sub):
            msg = yield sub.get()
            arrival.append((sim.now, msg))

        sim.process(consumer(sim, sub))
        broker.publish("t", "hello")
        sim.run()
        assert arrival == [(pytest.approx(0.5), "hello")]

    def test_per_subscriber_latency_differs(self, sim):
        broker = Broker(sim)
        near = broker.subscribe("t", "near", latency=0.01)
        far = broker.subscribe("t", "far", latency=0.30)
        arrivals = {}

        def consumer(sim, sub, name):
            yield sub.get()
            arrivals[name] = sim.now

        sim.process(consumer(sim, near, "near"))
        sim.process(consumer(sim, far, "far"))
        broker.publish("t", "x")
        sim.run()
        assert arrivals["near"] < arrivals["far"]

    def test_fifo_per_subscriber(self, sim):
        broker = Broker(sim)
        sub = broker.subscribe("t", "w", latency=0.05)
        received = []

        def consumer(sim, sub):
            for _ in range(5):
                msg = yield sub.get()
                received.append(msg)

        sim.process(consumer(sim, sub))
        for index in range(5):
            broker.publish("t", index)
        sim.run()
        assert received == [0, 1, 2, 3, 4]

    def test_exclude_subscriber(self, sim):
        broker = Broker(sim)
        a = broker.subscribe("t", "a")
        b = broker.subscribe("t", "b")
        broker.publish("t", "msg", exclude=a)
        sim.run()
        assert len(a.queue) == 0
        assert len(b.queue) == 1

    def test_unsubscribe_stops_delivery(self, sim):
        broker = Broker(sim)
        sub = broker.subscribe("t", "w")
        broker.unsubscribe(sub)
        broker.publish("t", "msg")
        sim.run()
        assert len(sub.queue) == 0

    def test_send_point_to_point(self, sim):
        broker = Broker(sim)
        a = broker.subscribe("t", "a")
        b = broker.subscribe("t", "b")
        broker.send(a, "direct")
        sim.run()
        assert len(a.queue) == 1
        assert len(b.queue) == 0

    def test_delivered_counter(self, sim):
        broker = Broker(sim)
        sub = broker.subscribe("t", "w")
        broker.publish("t", 1)
        broker.publish("t", 2)
        sim.run()
        assert sub.delivered == 2
        assert broker.published == 2

    def test_negative_latency_rejected(self, sim):
        broker = Broker(sim)
        with pytest.raises(ValueError):
            broker.subscribe("t", "w", latency=-0.1)
        with pytest.raises(ValueError):
            Broker(sim, base_latency=-1.0)


class TestTopology:
    def test_build_places_all_nodes(self, sim):
        topology = Topology.build(
            sim, ["a", "b", "c"], TopologyConfig(), rng=np.random.default_rng(0)
        )
        for name in ("a", "b", "c"):
            latency = topology.latency_of(name)
            assert 0.005 <= latency <= 0.060

    def test_unknown_node_raises(self, sim):
        topology = Topology.build(sim, ["a"], rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            topology.latency_of("ghost")

    def test_pair_latency_is_two_legs(self, sim):
        topology = Topology.build(sim, [], TopologyConfig(broker_processing=0.002))
        topology.add_node("x", 0.01)
        topology.add_node("y", 0.03)
        assert topology.pair_latency("x", "y") == pytest.approx(0.042)

    def test_subscribe_uses_placed_latency(self, sim):
        topology = Topology.build(sim, [], TopologyConfig(broker_processing=0.0))
        topology.add_node("w", 0.25)
        sub = topology.subscribe("jobs", "w")
        assert sub.latency == 0.25

    def test_add_node_validates(self, sim):
        topology = Topology.build(sim, [])
        with pytest.raises(ValueError):
            topology.add_node("w", -0.5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TopologyConfig(min_latency=0.5, max_latency=0.1)
        with pytest.raises(ValueError):
            TopologyConfig(broker_processing=-0.1)

    def test_placement_deterministic_per_rng(self, sim):
        a = Topology.build(sim, ["x", "y"], rng=np.random.default_rng(5))
        b = Topology.build(sim, ["x", "y"], rng=np.random.default_rng(5))
        assert a.node_latency == b.node_latency
