"""Unit tests for PriorityResource (foreground/background link sharing)."""

import pytest

from repro.sim import Simulator
from repro.sim.resources import PriorityResource


@pytest.fixture
def sim():
    return Simulator()


class TestPriorityOrdering:
    def test_lower_priority_value_granted_first(self, sim):
        resource = PriorityResource(sim, capacity=1)
        grants = []

        def holder(sim, resource):
            request = resource.request(priority=0)
            yield request
            yield sim.timeout(1.0)
            resource.release(request)

        def waiter(sim, resource, priority, name):
            yield sim.timeout(0.1)  # request while the holder is busy
            request = resource.request(priority=priority)
            yield request
            grants.append(name)
            yield sim.timeout(0.5)
            resource.release(request)

        sim.process(holder(sim, resource))
        sim.process(waiter(sim, resource, 1, "background"))
        sim.process(waiter(sim, resource, 0, "foreground"))
        sim.run()
        assert grants == ["foreground", "background"]

    def test_fifo_within_priority_level(self, sim):
        resource = PriorityResource(sim, capacity=1)
        grants = []

        def holder(sim, resource):
            request = resource.request()
            yield request
            yield sim.timeout(1.0)
            resource.release(request)

        def waiter(sim, resource, name):
            yield sim.timeout(0.1)
            request = resource.request(priority=1)
            yield request
            grants.append(name)
            resource.release(request)

        sim.process(holder(sim, resource))
        for name in ("first", "second", "third"):
            sim.process(waiter(sim, resource, name))
        sim.run()
        assert grants == ["first", "second", "third"]

    def test_non_preemptive(self, sim):
        """A background holder is never interrupted by a foreground request."""
        resource = PriorityResource(sim, capacity=1)
        timeline = []

        def background(sim, resource):
            request = resource.request(priority=1)
            yield request
            timeline.append(("bg-start", sim.now))
            yield sim.timeout(5.0)
            resource.release(request)
            timeline.append(("bg-end", sim.now))

        def foreground(sim, resource):
            yield sim.timeout(1.0)
            request = resource.request(priority=0)
            yield request
            timeline.append(("fg-start", sim.now))
            resource.release(request)

        sim.process(background(sim, resource))
        sim.process(foreground(sim, resource))
        sim.run()
        assert timeline == [("bg-start", 0.0), ("bg-end", 5.0), ("fg-start", 5.0)]

    def test_capacity_respected(self, sim):
        resource = PriorityResource(sim, capacity=2)
        concurrency = []

        def user(sim, resource, priority):
            request = resource.request(priority)
            yield request
            concurrency.append(resource.count)
            yield sim.timeout(1.0)
            resource.release(request)

        for index in range(6):
            sim.process(user(sim, resource, index % 2))
        sim.run()
        assert max(concurrency) <= 2

    def test_release_validation(self, sim):
        resource = PriorityResource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            resource.release(sim.event())

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            PriorityResource(sim, capacity=0)
