"""The decision ledger: one DecisionRecord per allocation, for every
scheduler, observation-only (bit-identical metrics with it on or off)."""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.obs import CandidateScore, DecisionLedger, DecisionRecord, ObsConfig
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.workload.job import Job, JobStream
from repro.workload.msr import TASK_ANALYZER


def burst_stream(n=8):
    return JobStream.burst(
        [
            Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i % 3}", size_mb=10.0)
            for i in range(n)
        ]
    )


def run_once(scheduler, obs, n=8, seed=5):
    runtime = WorkflowRuntime(
        profile=make_profile(make_spec("w1"), make_spec("w2"), make_spec("w3")),
        stream=burst_stream(n),
        scheduler=make_scheduler(scheduler),
        config=EngineConfig(seed=seed, trace=True, obs=obs),
    )
    result = runtime.run()
    return result, runtime


class TestEmission:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_every_scheduler_emits_one_record_per_assignment(self, scheduler):
        result, runtime = run_once(scheduler, obs=ObsConfig())
        ledger = runtime.obs.ledger
        assert ledger is not None
        # One record per assignment: completed jobs all have a final
        # record, and the count matches the trace's assigned events.
        assigned = runtime.metrics.trace.of_kind("assigned")
        assert len(ledger.records) == len(assigned)
        assert result.jobs_completed == 8
        for i in range(8):
            record = ledger.final_for_job(f"j{i}")
            assert record is not None
            assert record.policy == scheduler
            assert record.worker in ("w1", "w2", "w3")
            assert record.reason  # every policy narrates its pick

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_records_match_trace_assignments(self, scheduler):
        _, runtime = run_once(scheduler, obs=ObsConfig())
        ledger = runtime.obs.ledger
        assigned = runtime.metrics.trace.of_kind("assigned")
        for record, event in zip(ledger.records, assigned):
            assert record.job_id == event.job_id
            assert record.worker == event.worker
            assert record.time == event.time

    def test_bidding_records_carry_scored_candidates(self):
        _, runtime = run_once("bidding", obs=ObsConfig())
        for record in runtime.obs.ledger.records:
            assert record.kind in ("contest", "fallback")
            if record.kind == "contest":
                assert len(record.candidates) >= 1
                chosen = record.candidate(record.worker)
                assert chosen is not None and chosen.score is not None
                if record.runner_up is not None:
                    beaten = record.candidate(record.runner_up)
                    # Lower bid wins; ties impossible under (cost, name) sort.
                    assert chosen.score <= beaten.score

    def test_ledger_off_means_no_ledger(self):
        _, runtime = run_once("bidding", obs=ObsConfig(ledger=False))
        assert runtime.obs.ledger is None


class TestObservationOnly:
    """Seed purity: the ledger may not perturb the run."""

    @pytest.mark.parametrize("scheduler", ["bidding", "baseline", "spark", "random"])
    def test_metrics_bit_identical_with_ledger_on_or_off(self, scheduler):
        on, _ = run_once(scheduler, obs=ObsConfig(ledger=True))
        off, _ = run_once(scheduler, obs=ObsConfig(ledger=False))
        bare, _ = run_once(scheduler, obs=False)
        for other in (off, bare):
            assert on.makespan_s == other.makespan_s
            assert on.cache_misses == other.cache_misses
            assert on.cache_hits == other.cache_hits
            assert on.data_load_mb == other.data_load_mb
            assert on.jobs_completed == other.jobs_completed

    def test_trace_bit_identical_with_ledger_on_or_off(self):
        _, on = run_once("bidding", obs=ObsConfig(ledger=True))
        _, off = run_once("bidding", obs=ObsConfig(ledger=False))
        assert on.metrics.trace.events == off.metrics.trace.events


class TestRoundTrip:
    def test_records_survive_json_round_trip(self):
        _, runtime = run_once("bidding", obs=ObsConfig())
        ledger = runtime.obs.ledger
        clone = DecisionLedger.from_dicts(ledger.to_dicts())
        assert clone.records == ledger.records
        assert clone.final_for_job("j0") == ledger.final_for_job("j0")

    def test_candidate_lookup_and_defaults(self):
        record = DecisionRecord(
            seq=0,
            time=1.0,
            job_id="j",
            repo_id="r",
            worker="w1",
            policy="p",
            kind="k",
            candidates=(CandidateScore(worker="w1", score=2.0, local=True),),
        )
        assert record.candidate("w1").local is True
        assert record.candidate("w9") is None
        assert DecisionRecord.from_dict(record.to_dict()) == record
