"""In-process drive of the real worker loop.

``_run_worker`` normally runs in a spawned child, invisible to
coverage; here we run it as a task against a local asyncio server
acting as the coordinator, so every branch of the worker -- cache
hit/miss, data-free jobs, preload, shutdown, the stall hook -- is
exercised in this process.
"""

import asyncio
import hashlib

import pytest

from repro.exec import protocol
from repro.exec.handlers import payload_for
from repro.exec.worker import _run_worker, fetch_seconds, process_seconds


def spec(**overrides):
    base = {
        "name": "w1",
        "link_latency": 0.0,
        "network_mbps": 100.0,
        "rw_mbps": 500.0,
        "cpu_factor": 1.0,
        "cache_capacity_mb": None,
        "preload": (),
    }
    base.update(overrides)
    return base


def cfg(**overrides):
    base = {"time_scale": 0.001, "heartbeat_s": 0.05}
    base.update(overrides)
    return base


class TestCostModel:
    def test_fetch_is_latency_plus_transfer(self):
        s = spec(link_latency=0.5, network_mbps=10.0)
        assert fetch_seconds(s, 20.0) == pytest.approx(0.5 + 2.0)

    def test_process_is_io_pass_plus_scaled_compute(self):
        s = spec(rw_mbps=100.0, cpu_factor=2.0)
        assert process_seconds(s, 50.0, 1.0) == pytest.approx(0.5 + 0.5)


class Coordinator:
    """The coordinator's half of the socket, driven by the test."""

    def __init__(self):
        self.server = None
        self.port = None
        self.reader = None
        self.writer = None
        self._connected = None

    async def __aenter__(self):
        self._connected = asyncio.get_running_loop().create_future()

        async def on_connect(reader, writer):
            self._connected.set_result((reader, writer))

        self.server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        if self.writer is not None:
            self.writer.close()
        self.server.close()
        await self.server.wait_closed()

    async def accept(self):
        self.reader, self.writer = await asyncio.wait_for(self._connected, 5.0)
        hello = await asyncio.wait_for(protocol.recv(self.reader), 5.0)
        return hello

    async def recv_type(self, wanted, timeout=5.0):
        """Next message of ``wanted`` type, skipping heartbeats etc."""

        async def scan():
            while True:
                message = await protocol.recv(self.reader)
                assert message is not None, f"EOF while waiting for {wanted}"
                if message["type"] == wanted:
                    return message

        return await asyncio.wait_for(scan(), timeout)

    def dispatch(self, job_id, repo_id=None, size_mb=0.0, **fields):
        message = {
            "type": protocol.DISPATCH,
            "job_id": job_id,
            "repo_id": repo_id,
            "size_mb": size_mb,
        }
        message.update(fields)
        protocol.send(self.writer, message)

    def shutdown(self):
        protocol.send(self.writer, {"type": protocol.SHUTDOWN})


def drive(scenario):
    """Run ``scenario(coordinator, spec, cfg) -> None`` against a live
    worker task, tearing everything down on the way out."""

    async def main():
        async with Coordinator() as coordinator:
            worker = asyncio.ensure_future(
                _run_worker("127.0.0.1", coordinator.port, scenario.spec, scenario.cfg)
            )
            try:
                hello = await coordinator.accept()
                assert hello == {
                    "type": protocol.HELLO,
                    "role": protocol.ROLE_WORKER,
                    "name": scenario.spec["name"],
                }
                await scenario(coordinator, worker)
            finally:
                worker.cancel()
                await asyncio.gather(worker, return_exceptions=True)

    asyncio.run(main())


def scenario(spec_dict=None, cfg_dict=None):
    def wrap(fn):
        fn.spec = spec_dict or spec()
        fn.cfg = cfg_dict or cfg()
        fn.run = lambda: drive(fn)
        return fn

    return wrap


class TestWorkerLoop:
    def test_miss_then_hit_on_the_same_repo(self):
        @scenario()
        async def play(co, worker):
            co.dispatch("j0", repo_id="r1", size_mb=8.0, handler="checksum")
            done = await co.recv_type(protocol.DONE)
            assert done["name"] == "w1"
            assert done["job_id"] == "j0"
            assert done["cache_hit"] is False
            assert done["fetched_mb"] == pytest.approx(8.0)
            assert done["exec_s"] > 0.0
            expected = hashlib.sha256(payload_for("j0", "r1", 8.0)).hexdigest()
            assert done["result"] == expected

            co.dispatch("j1", repo_id="r1", size_mb=8.0)
            done = await co.recv_type(protocol.DONE)
            assert done["cache_hit"] is True
            assert done["fetched_mb"] == 0.0

        play.run()

    def test_preloaded_repo_hits_cold(self):
        @scenario(spec_dict=spec(preload=(("r9", 4.0),)))
        async def play(co, worker):
            co.dispatch("j0", repo_id="r9", size_mb=4.0)
            done = await co.recv_type(protocol.DONE)
            assert done["cache_hit"] is True
            assert done["fetched_mb"] == 0.0

        play.run()

    def test_data_free_job_has_no_cache_verdict(self):
        @scenario()
        async def play(co, worker):
            co.dispatch("j0", handler="noop")
            done = await co.recv_type(protocol.DONE)
            assert done["cache_hit"] is None
            assert done["fetched_mb"] == 0.0

        play.run()

    def test_fifo_execution_order(self):
        @scenario()
        async def play(co, worker):
            for i in range(4):
                co.dispatch(f"j{i}", repo_id="r0", size_mb=1.0)
            order = [(await co.recv_type(protocol.DONE))["job_id"] for _ in range(4)]
            assert order == ["j0", "j1", "j2", "j3"]

        play.run()

    def test_heartbeats_flow_until_shutdown(self):
        @scenario()
        async def play(co, worker):
            await co.recv_type(protocol.HEARTBEAT)
            await co.recv_type(protocol.HEARTBEAT)
            co.shutdown()
            await asyncio.wait_for(worker, 5.0)

        play.run()

    def test_stall_hook_goes_silent_without_a_done(self):
        @scenario(cfg_dict=cfg(stall_after=1, heartbeat_s=0.05))
        async def play(co, worker):
            co.dispatch("j0", repo_id="r0", size_mb=1.0)
            # The job executes, then the worker wedges: no DONE for it,
            # and the heartbeat loop stops on its next wakeup.
            await asyncio.sleep(0.3)
            drained = []
            while True:
                try:
                    message = await asyncio.wait_for(protocol.recv(co.reader), 0.2)
                except asyncio.TimeoutError:
                    break
                assert message is not None
                drained.append(message["type"])
            assert protocol.DONE not in drained
            # Silence: several heartbeat periods pass with no beacon.
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(protocol.recv(co.reader), 0.25)

        play.run()
