"""Unit tests for the simulation event loop."""

import pytest

from repro.sim import Simulator
from repro.sim.kernel import EmptySchedule


@pytest.fixture
def sim():
    return Simulator()


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=100.0).now == 100.0

    def test_clock_advances_to_event_time(self, sim):
        sim.timeout(3.5)
        sim.run()
        assert sim.now == 3.5

    def test_clock_never_goes_backwards(self, sim):
        times = []
        for delay in (5.0, 1.0, 3.0, 1.0, 4.0):
            sim.timeout(delay).add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times == sorted(times)


class TestStep:
    def test_step_processes_one_event(self, sim):
        seen = []
        sim.timeout(1.0).add_callback(lambda e: seen.append(1))
        sim.timeout(2.0).add_callback(lambda e: seen.append(2))
        sim.step()
        assert seen == [1]

    def test_step_on_empty_schedule_raises(self, sim):
        with pytest.raises(EmptySchedule):
            sim.step()

    def test_peek_returns_next_time(self, sim):
        sim.timeout(7.0)
        assert sim.peek() == 7.0

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")


class TestRun:
    def test_run_exhausts_schedule(self, sim):
        count = []
        for i in range(10):
            sim.timeout(float(i)).add_callback(lambda e: count.append(1))
        sim.run()
        assert len(count) == 10

    def test_run_until_time_stops_early(self, sim):
        seen = []
        sim.timeout(1.0).add_callback(lambda e: seen.append("early"))
        sim.timeout(10.0).add_callback(lambda e: seen.append("late"))
        sim.run(until=5.0)
        assert seen == ["early"]
        assert sim.now == 5.0

    def test_run_until_time_in_past_raises(self, sim):
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=0.5)

    def test_run_until_event_returns_its_value(self, sim):
        target = sim.timeout(3.0, value="reached")
        sim.timeout(10.0)
        assert sim.run(until=target) == "reached"
        assert sim.now == 3.0

    def test_run_until_processed_event_is_noop(self, sim):
        target = sim.timeout(1.0, value="v")
        sim.run()
        assert sim.run(until=target) == "v"

    def test_run_until_unreachable_event_raises(self, sim):
        orphan = sim.event()  # never triggered
        sim.timeout(1.0)
        with pytest.raises(RuntimeError, match="ran out of events"):
            sim.run(until=orphan)

    def test_run_can_resume_after_deadline(self, sim):
        seen = []
        sim.timeout(10.0).add_callback(lambda e: seen.append("late"))
        sim.run(until=5.0)
        assert seen == []
        sim.run()
        assert seen == ["late"]
        assert sim.now == 10.0

    def test_deterministic_ordering_repeatable(self):
        def trace_run():
            sim = Simulator()
            order = []
            for index, delay in enumerate([2.0, 1.0, 2.0, 1.0]):
                sim.timeout(delay).add_callback(
                    lambda e, index=index: order.append(index)
                )
            sim.run()
            return order

        assert trace_run() == trace_run() == [1, 3, 0, 2]


class TestProcessFactory:
    def test_process_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_active_process_visible_during_resume(self, sim):
        observed = []

        def proc(sim):
            observed.append(sim.active_process)
            yield sim.timeout(1.0)

        process = sim.process(proc(sim))
        sim.run()
        assert observed == [process]
        assert sim.active_process is None
