"""Tests for the HTML report generator."""

import pytest

from repro.experiments.fig2_spark import Fig2Group, Fig2Result
from repro.experiments.fig3_aggregates import Fig3Result, WorkloadRow
from repro.experiments.fig4_breakdown import Fig4Cell, Fig4Result
from repro.experiments.html_report import (
    ReportInputs,
    _svg_grouped_bars,
    _table,
    build_report,
)
from repro.experiments.tables_msr import MSRTables
from repro.metrics.report import RunResult


def fake_run(scheduler, makespan, misses=10, data=100.0):
    return RunResult(
        scheduler=scheduler,
        workload="msr",
        profile="msr-equal",
        seed=1,
        iteration=0,
        makespan_s=makespan,
        cache_misses=misses,
        cache_hits=5,
        data_load_mb=data,
        jobs_completed=50,
    )


def fake_inputs():
    fig2 = Fig2Result(
        groups=(
            Fig2Group("G1 fast-slow / large", "fast-slow", "all_diff_large", 100.0, 600.0),
            Fig2Group("G2 all-equal / small", "all-equal", "all_small_strict", 50.0, 60.0),
        )
    )
    fig3 = Fig3Result(
        rows=(
            WorkloadRow("80%_large", 200.0, 100.0, 30.0, 15.0, 1000.0, 500.0),
            WorkloadRow("80%_small", 80.0, 60.0, 28.0, 16.0, 700.0, 400.0),
        )
    )
    fig4 = Fig4Result(
        cells=(
            Fig4Cell("80%_large", "all-equal", 200.0, 100.0, 300.0, 310.0),
        ),
        best_vs_centralized=4.2,
        best_vs_centralized_cell=("80%_large", "all-equal"),
    )
    tables = MSRTables(
        bidding=(fake_run("bidding", 3000.0),),
        baseline=(fake_run("baseline", 3600.0, misses=20, data=200.0),),
    )
    return ReportInputs(fig2=fig2, fig3=fig3, fig4=fig4, tables=tables)


class TestSvg:
    def test_bars_scale_to_max(self):
        svg = _svg_grouped_bars(
            [("g", 50.0, 100.0)], ("a", "b"), unit="s", width=860
        )
        assert svg.startswith("<svg")
        assert svg.count("<rect") == 2
        # The larger value fills the chart area (860 - 200 - 90 = 570).
        assert 'width="570.0"' in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _svg_grouped_bars([], ("a", "b"), unit="s")

    def test_labels_escaped(self):
        svg = _svg_grouped_bars([("<evil>", 1.0, 2.0)], ("a", "b"), unit="s")
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg


class TestTable:
    def test_cells_escaped(self):
        table = _table(["h"], [["<script>"]])
        assert "<script>" not in table
        assert "&lt;script&gt;" in table


class TestBuildReport:
    def test_contains_all_sections(self):
        report = build_report(fake_inputs())
        for marker in (
            "<!DOCTYPE html>",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Tables 1–3",
            "<svg",
            "4.20x",
        ):
            assert marker in report, marker

    def test_numbers_flow_through(self):
        report = build_report(fake_inputs())
        assert "6.00x" in report  # G1 spark slowdown 600/100
        assert "+50.0%" in report  # fig3 speedup for 80%_large

    def test_report_is_self_contained(self):
        report = build_report(fake_inputs())
        assert "http://" not in report.replace("http://www.w3.org", "")
        assert "src=" not in report  # no external resources
