"""Run the doctest examples embedded in module docstrings.

Only modules with cheap, self-contained examples are included; the
point is that every example a reader might copy-paste actually works.
"""

import doctest

import pytest

import repro
import repro.metrics.ascii_chart
import repro.sim


@pytest.mark.parametrize(
    "module",
    [repro.sim, repro.metrics.ascii_chart, repro],
    ids=lambda module: module.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False, raise_on_error=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"
