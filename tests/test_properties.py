"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.cache import WorkerCache
from repro.data.sizes import band_of
from repro.net.bandwidth import FairSharePipe
from repro.sim import Simulator, Store
from repro.sim.rng import split_seed
from repro.core.contest import Contest
from repro.engine.messages import Bid
from repro.workload.job import Job, JobStream
from repro.workload.msr import TASK_ANALYZER


# -- DES kernel ---------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_kernel_clock_monotonic_under_arbitrary_delays(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.timeout(delay).add_callback(lambda e: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(delays)


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100))
def test_store_preserves_fifo_for_any_items(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim, store, n):
        for _ in range(n):
            value = yield store.get()
            received.append(value)

    for item in items:
        store.put(item)
    sim.process(consumer(sim, store, len(items)))
    sim.run()
    assert received == items


# -- rng ------------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=2**31),
    st.lists(st.text(min_size=0, max_size=8), min_size=1, max_size=4),
)
def test_split_seed_stable_and_bounded(seed, keys):
    first = split_seed(seed, *keys)
    second = split_seed(seed, *keys)
    assert first == second
    assert 0 <= first < 2**64


# -- fair-share pipe -------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=0.1, max_value=500.0), min_size=1, max_size=12),
    st.floats(min_value=0.5, max_value=100.0),
)
@settings(max_examples=50, deadline=None)
def test_pipe_conserves_work_when_saturated(sizes, capacity):
    """Simultaneous transfers through a shared pipe finish at exactly
    total_bytes / capacity, regardless of the sharing schedule."""
    sim = Simulator()
    pipe = FairSharePipe(sim, capacity_mbps=capacity)
    events = [pipe.transfer(size) for size in sizes]
    sim.run()
    assert all(event.processed for event in events)
    np.testing.assert_allclose(sim.now, sum(sizes) / capacity, rtol=1e-9)


@given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=8))
@settings(max_examples=50, deadline=None)
def test_pipe_completion_order_matches_size_order(sizes):
    """With simultaneous starts, smaller transfers never finish after
    larger ones (processor sharing preserves size ordering)."""
    sim = Simulator()
    pipe = FairSharePipe(sim, capacity_mbps=10.0)
    finish_times = {}

    def record(index):
        def callback(event):
            finish_times[index] = sim.now

        return callback

    for index, size in enumerate(sizes):
        pipe.transfer(size).add_callback(record(index))
    sim.run()
    by_size = sorted(range(len(sizes)), key=lambda i: sizes[i])
    times_in_size_order = [finish_times[i] for i in by_size]
    assert times_in_size_order == sorted(times_in_size_order)


# -- cache -------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=20), st.floats(min_value=1.0, max_value=200.0)),
        min_size=1,
        max_size=100,
    ),
    st.floats(min_value=50.0, max_value=1000.0),
)
def test_cache_capacity_never_exceeded_except_single_oversize(accesses, capacity):
    cache = WorkerCache(capacity_mb=capacity)
    for repo_index, size in accesses:
        repo_id = f"r{repo_index}"
        if not cache.lookup(repo_id):
            cache.insert(repo_id, size)
    assert cache.used_mb <= capacity or len(cache) == 1


@given(
    st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=200)
)
def test_cache_miss_accounting_consistent(repo_indices):
    """misses == number of inserts; with unit sizes, data volume == misses."""
    cache = WorkerCache()
    for repo_index in repo_indices:
        repo_id = f"r{repo_index}"
        if not cache.lookup(repo_id):
            cache.insert(repo_id, 1.0)
    assert cache.stats.misses == len({f"r{i}" for i in repo_indices})
    assert cache.stats.mb_downloaded == float(cache.stats.misses)
    assert cache.stats.hits + cache.stats.misses == len(repo_indices)


# -- contest --------------------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e5),
        min_size=1,
        max_size=10,
        unique=True,
    )
)
def test_contest_winner_is_argmin(costs):
    sim = Simulator()
    workers = [f"w{i}" for i in range(len(costs))]
    job = Job(job_id="j", task=TASK_ANALYZER, repo_id="r", size_mb=1.0)
    contest = Contest(sim, job, workers)
    for worker, cost in zip(workers, costs):
        contest.add_bid(Bid(job_id="j", worker=worker, cost_s=cost))
    expected = workers[int(np.argmin(costs))]
    assert contest.winner() == expected


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=8))
def test_contest_close_outcome_classification(invited, bids):
    sim = Simulator()
    workers = [f"w{i}" for i in range(invited)]
    job = Job(job_id="j", task=TASK_ANALYZER, repo_id="r", size_mb=1.0)
    contest = Contest(sim, job, workers)
    for worker in workers[: min(bids, invited)]:
        contest.add_bid(Bid(job_id="j", worker=worker, cost_s=1.0))
    outcome = contest.close()
    if bids >= invited:
        assert outcome == "full"
    elif bids > 0:
        assert outcome == "timeout"
    else:
        assert outcome == "fallback"


# -- workload -------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=60))
@settings(max_examples=30, deadline=None)
def test_jobstream_poisson_sorted_and_complete(seed, n):
    jobs = [
        Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=1.0)
        for i in range(n)
    ]
    stream = JobStream.poisson(jobs, 1.0, np.random.default_rng(seed))
    times = [a.at for a in stream]
    assert times == sorted(times)
    assert len(stream) == n
    assert {a.job.job_id for a in stream} == {f"j{i}" for i in range(n)}


@given(st.floats(min_value=0.5, max_value=1100.0))
def test_band_of_total_over_positive_sizes(size):
    band = band_of(size)
    assert band.name in {"small", "medium", "large"}
