"""Tests for workflow assembly, determinism and cache persistence."""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime, single_task_pipeline
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import make_scheduler
from repro.workload.generators import job_config_by_name
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def small_stream(n=6, size=10.0):
    return JobStream(
        arrivals=[
            JobArrival(
                at=float(i),
                job=Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=size),
            )
            for i in range(n)
        ]
    )


def make_runtime(stream=None, scheduler="bidding", seed=0, iteration=0, caches=None):
    return WorkflowRuntime(
        profile=make_profile(make_spec("w1"), make_spec("w2")),
        stream=stream or small_stream(),
        scheduler=make_scheduler(scheduler),
        config=EngineConfig(seed=seed),
        initial_caches=caches,
        iteration=iteration,
    )


class TestDeterminism:
    @pytest.mark.parametrize("scheduler", ["baseline", "bidding", "spark"])
    def test_identical_runs_identical_results(self, scheduler):
        a = make_runtime(scheduler=scheduler, seed=7).run()
        b = make_runtime(scheduler=scheduler, seed=7).run()
        assert a.makespan_s == b.makespan_s
        assert a.cache_misses == b.cache_misses
        assert a.data_load_mb == b.data_load_mb

    def test_different_seeds_differ(self):
        a = make_runtime(seed=1).run()
        b = make_runtime(seed=2).run()
        assert a.makespan_s != b.makespan_s

    def test_iterations_decorrelated_but_deterministic(self):
        a0 = make_runtime(seed=1, iteration=0).run()
        a1 = make_runtime(seed=1, iteration=1).run()
        b1 = make_runtime(seed=1, iteration=1).run()
        assert a0.makespan_s != a1.makespan_s  # iteration changes draws
        assert a1.makespan_s == b1.makespan_s  # but reproducibly


class TestCachePersistence:
    def test_snapshot_roundtrip_warms_second_run(self):
        first = make_runtime(seed=3)
        r1 = first.run()
        assert r1.cache_misses == 6
        second = make_runtime(seed=3, iteration=1, caches=first.cache_snapshot())
        r2 = second.run()
        assert r2.cache_misses < 6
        assert r2.data_load_mb < r1.data_load_mb

    def test_cold_restart_repeats_misses(self):
        r1 = make_runtime(seed=3).run()
        r2 = make_runtime(seed=3, iteration=1).run()
        assert r2.cache_misses == r1.cache_misses == 6

    def test_snapshot_contains_downloaded_repos(self):
        runtime = make_runtime(seed=4)
        runtime.run()
        snapshot = runtime.cache_snapshot()
        all_repos = set()
        for contents in snapshot.values():
            all_repos.update(contents)
        assert all_repos == {f"r{i}" for i in range(6)}


class TestResultShape:
    def test_labels_propagated(self):
        _corpus, stream = job_config_by_name("80%_small").build(seed=5)
        runtime = WorkflowRuntime(
            profile=make_profile(make_spec("w1"), make_spec("w2")),
            stream=stream,
            scheduler=make_scheduler("bidding"),
            config=EngineConfig(seed=5),
            iteration=2,
        )
        result = runtime.run()
        assert result.scheduler == "bidding"
        assert result.workload == "80%_small"
        assert result.profile == "test-profile"
        assert result.seed == 5
        assert result.iteration == 2

    def test_per_worker_tables_cover_active_workers(self):
        result = make_runtime(seed=6).run()
        assert set(result.per_worker_jobs) <= {"w1", "w2"}
        assert sum(result.per_worker_jobs.values()) == 6

    def test_trace_disabled_by_flag(self):
        runtime = WorkflowRuntime(
            profile=make_profile(make_spec("w1")),
            stream=small_stream(2),
            scheduler=make_scheduler("round-robin"),
            config=EngineConfig(seed=0, trace=False),
        )
        runtime.run()
        assert len(runtime.metrics.trace) == 0

    def test_default_pipeline_is_single_task(self):
        pipeline = single_task_pipeline()
        assert list(pipeline.tasks) == [TASK_ANALYZER]
        pipeline.validate()


class TestMetricConsistency:
    """Cross-checks between independent accounting paths."""

    @pytest.mark.parametrize("scheduler", ["baseline", "bidding", "spark", "random"])
    def test_data_load_equals_link_totals(self, scheduler):
        runtime = make_runtime(scheduler=scheduler, seed=8)
        result = runtime.run()
        link_total = sum(w.machine.link.total_mb for w in runtime.workers.values())
        assert result.data_load_mb == pytest.approx(link_total)

    @pytest.mark.parametrize("scheduler", ["baseline", "bidding"])
    def test_misses_equal_cache_stats(self, scheduler):
        runtime = make_runtime(scheduler=scheduler, seed=9)
        result = runtime.run()
        cache_misses = sum(w.cache.stats.misses for w in runtime.workers.values())
        assert result.cache_misses == cache_misses

    def test_hits_plus_misses_equal_data_jobs(self):
        runtime = make_runtime(seed=10)
        result = runtime.run()
        assert result.cache_hits + result.cache_misses == 6

    def test_makespan_at_least_last_arrival(self):
        result = make_runtime(seed=11).run()
        assert result.makespan_s >= 5.0
