"""``REPRO_FLEET_SOA`` parity: the fast path must change nothing.

The struct-of-arrays mirrors are a pure performance substrate -- with
the switch off, every consumer falls back to its original per-object
Python scan.  Both paths must produce bit-identical fixed-seed metrics,
which is pinned two ways: the golden determinism fixture (recorded
before the fast path existed and replayed with it *on* in
``test_determinism_golden``) and this module, which replays the same
cell with the fast path *off* for every registered scheduler.
"""

import json
from pathlib import Path

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.experiments.runner import CellSpec, run_cell
from repro.fleet import SOA_ENV, soa_enabled
from repro.schedulers.registry import make_scheduler
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_determinism.json").read_text(encoding="utf-8")
)


def _observed(result):
    return {
        "iteration": result.iteration,
        "makespan_s": result.makespan_s,
        "cache_misses": result.cache_misses,
        "cache_hits": result.cache_hits,
        "data_load_mb": result.data_load_mb,
        "jobs_completed": result.jobs_completed,
    }


def test_switch_parsing(monkeypatch):
    for off in ("0", "false", "OFF", " no "):
        monkeypatch.setenv(SOA_ENV, off)
        assert not soa_enabled()
    for on in ("1", "true", "yes", ""):
        monkeypatch.setenv(SOA_ENV, on)
        assert soa_enabled()
    monkeypatch.delenv(SOA_ENV)
    assert soa_enabled()


def _tiny_runtime():
    stream = JobStream(
        arrivals=[
            JobArrival(
                at=0.0,
                job=Job(job_id="j0", task=TASK_ANALYZER, repo_id="r0", size_mb=10.0),
            )
        ]
    )
    return WorkflowRuntime(
        profile=make_profile(make_spec("w1")),
        stream=stream,
        scheduler=make_scheduler("baseline"),
        config=EngineConfig(seed=0),
    )


def test_switch_controls_runtime_wiring(monkeypatch):
    monkeypatch.setenv(SOA_ENV, "0")
    assert _tiny_runtime().fleet is None
    monkeypatch.delenv(SOA_ENV)
    runtime = _tiny_runtime()
    assert runtime.fleet is not None
    assert runtime.workers["w1"].fleet is runtime.fleet


@pytest.mark.parametrize("scheduler", sorted(GOLDEN))
def test_scalar_path_matches_golden(monkeypatch, scheduler):
    """With the fast path off, the golden cell's metrics are unchanged
    -- so scalar and vectorised paths agree to the last bit."""
    monkeypatch.setenv(SOA_ENV, "0")
    results = run_cell(
        CellSpec(
            scheduler=scheduler,
            workload="80%_small",
            profile="fast-slow",
            seed=7,
            iterations=2,
        )
    )
    expected = GOLDEN[scheduler]
    assert len(results) == len(expected)
    for result, exp in zip(results, expected):
        assert _observed(result) == exp, f"{scheduler} iteration {result.iteration}"
