"""Fault injection in the open-loop service layer.

The invariant under crashes is *conservation*: every admitted job ends
as exactly one completion or one permanent failure -- never lost, never
double-counted -- and the whole report is a pure function of the seed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FaultPlan, RecoveryConfig, run_service
from repro.faults import CrashRenewal

pytestmark = pytest.mark.faults

CHURN = FaultPlan(
    renewals=(CrashRenewal(mtbf_s=30.0, mttr_s=10.0),),
    recovery=RecoveryConfig(max_redispatches=4, backoff_base_s=0.2),
)


def serve(seed, rate=1.0, faults=CHURN):
    return run_service(
        scheduler="bidding",
        rate=rate,
        seed=seed,
        faults=faults,
        duration_s=60.0,
        autoscale=True,
        min_workers=2,
        max_workers=6,
    )


class TestConservation:
    def test_crashes_happen_and_every_job_is_accounted_for(self):
        report = serve(seed=3)
        assert report.crashes >= 1
        assert report.completed + report.failed == report.admitted

    def test_healthy_run_fails_nothing(self):
        report = serve(seed=3, faults=None)
        assert report.failed == 0
        assert report.crashes == 0
        assert report.completed == report.admitted

    def test_recovery_times_reported_when_orphans_recover(self):
        report = serve(seed=3)
        if report.redispatches:
            assert report.recovery_max_s >= report.recovery_p50_s >= 0.0

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_conservation_holds_under_any_seed(self, seed):
        report = serve(seed=seed)
        assert report.completed + report.failed == report.admitted
        assert report.completed + report.failed + report.shed == report.arrivals


class TestReproducibility:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_same_seed_same_report(self, seed):
        first = serve(seed=seed)
        second = serve(seed=seed)
        assert first.to_dict() == second.to_dict()
