"""Unit tests for the master-side bidding contest (Listing 1)."""

import pytest

from repro.core.contest import Contest, ContestStatus
from repro.engine.messages import Bid
from repro.sim import Simulator
from repro.workload.job import Job


@pytest.fixture
def sim():
    return Simulator()


def make_job():
    return Job(job_id="j1", task="t", repo_id="r1", size_mb=10.0)


def make_bid(worker, cost, job_id="j1"):
    return Bid(job_id=job_id, worker=worker, cost_s=cost)


class TestContestLifecycle:
    def test_opens_open(self, sim):
        contest = Contest(sim, make_job(), ["w1", "w2"])
        assert contest.status is ContestStatus.OPEN
        assert contest.opened_at == 0.0

    def test_needs_workers(self, sim):
        with pytest.raises(ValueError):
            Contest(sim, make_job(), [])

    def test_all_bids_event_fires_when_complete(self, sim):
        contest = Contest(sim, make_job(), ["w1", "w2"])
        contest.add_bid(make_bid("w1", 5.0))
        assert not contest.all_bids.triggered
        contest.add_bid(make_bid("w2", 3.0))
        assert contest.all_bids.triggered

    def test_close_classifies_full(self, sim):
        contest = Contest(sim, make_job(), ["w1"])
        contest.add_bid(make_bid("w1", 1.0))
        assert contest.close() == "full"
        assert contest.status is ContestStatus.CLOSED

    def test_close_classifies_timeout(self, sim):
        contest = Contest(sim, make_job(), ["w1", "w2"])
        contest.add_bid(make_bid("w1", 1.0))
        assert contest.close() == "timeout"

    def test_close_classifies_fallback(self, sim):
        contest = Contest(sim, make_job(), ["w1", "w2"])
        assert contest.close() == "fallback"

    def test_double_close_rejected(self, sim):
        contest = Contest(sim, make_job(), ["w1"])
        contest.close()
        with pytest.raises(RuntimeError):
            contest.close()

    def test_duration_tracks_clock(self, sim):
        contest = Contest(sim, make_job(), ["w1"])
        sim.timeout(2.5)
        sim.run()
        assert contest.duration == pytest.approx(2.5)


class TestBidHandling:
    def test_winner_is_lowest_cost(self, sim):
        contest = Contest(sim, make_job(), ["w1", "w2", "w3"])
        contest.add_bid(make_bid("w1", 5.0))
        contest.add_bid(make_bid("w2", 2.0))
        contest.add_bid(make_bid("w3", 9.0))
        assert contest.winner() == "w2"

    def test_tie_breaks_by_name(self, sim):
        contest = Contest(sim, make_job(), ["w1", "w2"])
        contest.add_bid(make_bid("w2", 5.0))
        contest.add_bid(make_bid("w1", 5.0))
        assert contest.winner() == "w1"

    def test_no_bids_no_winner(self, sim):
        contest = Contest(sim, make_job(), ["w1"])
        assert contest.winner() is None

    def test_late_bid_recorded_not_counted(self, sim):
        contest = Contest(sim, make_job(), ["w1", "w2"])
        contest.add_bid(make_bid("w1", 5.0))
        contest.close()
        assert contest.add_bid(make_bid("w2", 1.0)) is False
        assert contest.winner() == "w1"
        assert len(contest.late_bids) == 1

    def test_uninvited_worker_rejected(self, sim):
        contest = Contest(sim, make_job(), ["w1"])
        with pytest.raises(ValueError, match="uninvited"):
            contest.add_bid(make_bid("intruder", 1.0))

    def test_duplicate_bid_rejected(self, sim):
        contest = Contest(sim, make_job(), ["w1", "w2"])
        contest.add_bid(make_bid("w1", 1.0))
        with pytest.raises(ValueError, match="duplicate"):
            contest.add_bid(make_bid("w1", 2.0))

    def test_misrouted_bid_rejected(self, sim):
        contest = Contest(sim, make_job(), ["w1"])
        with pytest.raises(ValueError, match="routed"):
            contest.add_bid(make_bid("w1", 1.0, job_id="other-job"))

    def test_negative_bid_cost_rejected(self):
        with pytest.raises(ValueError):
            Bid(job_id="j", worker="w", cost_s=-1.0)
