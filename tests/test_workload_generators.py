"""Unit tests for the Section 6.3.1 job configurations."""

import pytest

from repro.data.sizes import band_of
from repro.workload.generators import (
    JOB_CONFIG_BUILDERS,
    JOBS_PER_CONFIG,
    all_diff_equal,
    eighty_pct_large,
    eighty_pct_small,
    job_config_by_name,
)


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(JOB_CONFIG_BUILDERS))
    def test_all_configs_build(self, name):
        corpus, stream = job_config_by_name(name).build(seed=1)
        assert len(stream) == JOBS_PER_CONFIG
        assert len(corpus) >= 1

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError, match="valid:"):
            job_config_by_name("80%_medium")


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(JOB_CONFIG_BUILDERS))
    def test_same_seed_same_workload(self, name):
        _c1, s1 = job_config_by_name(name).build(seed=42)
        _c2, s2 = job_config_by_name(name).build(seed=42)
        assert [(a.at, a.job.job_id, a.job.size_mb) for a in s1] == [
            (a.at, a.job.job_id, a.job.size_mb) for a in s2
        ]

    def test_different_seed_different_sizes(self):
        _c1, s1 = all_diff_equal().build(seed=1)
        _c2, s2 = all_diff_equal().build(seed=2)
        assert [a.job.size_mb for a in s1] != [a.job.size_mb for a in s2]


class TestAllDifferent:
    @pytest.mark.parametrize(
        "name", ["all_diff_equal", "all_diff_large", "all_diff_small", "all_small_strict"]
    )
    def test_every_job_distinct_repo(self, name):
        _corpus, stream = job_config_by_name(name).build(seed=3)
        repos = [a.job.repo_id for a in stream]
        assert len(set(repos)) == len(repos)

    def test_equal_mix_has_all_bands(self):
        _corpus, stream = all_diff_equal().build(seed=4)
        bands = {band_of(a.job.size_mb).name for a in stream}
        assert bands == {"small", "medium", "large"}

    def test_large_config_mostly_large(self):
        _corpus, stream = job_config_by_name("all_diff_large").build(seed=5)
        shares = [band_of(a.job.size_mb).name for a in stream]
        assert shares.count("large") / len(shares) > 0.65

    def test_small_config_mostly_small(self):
        _corpus, stream = job_config_by_name("all_diff_small").build(seed=5)
        shares = [band_of(a.job.size_mb).name for a in stream]
        assert shares.count("small") / len(shares) > 0.65

    def test_strict_small_is_pure(self):
        _corpus, stream = job_config_by_name("all_small_strict").build(seed=6)
        assert all(band_of(a.job.size_mb).name == "small" for a in stream)


class TestRepetitive:
    def test_80_large_shares_one_large_repo(self):
        _corpus, stream = eighty_pct_large().build(seed=7)
        large_jobs = [a.job for a in stream if band_of(a.job.size_mb).name == "large"]
        shared = [job for job in large_jobs if job.repo_id.endswith("-shared")]
        share = len(shared) / len(large_jobs)
        assert 0.70 <= share <= 0.90
        # All shared jobs reference the same repository and size.
        assert len({job.repo_id for job in shared}) == 1
        assert len({job.size_mb for job in shared}) == 1

    def test_80_small_shares_one_small_repo(self):
        _corpus, stream = eighty_pct_small().build(seed=8)
        small_jobs = [a.job for a in stream if band_of(a.job.size_mb).name == "small"]
        shared = [job for job in small_jobs if job.repo_id.endswith("-shared")]
        assert 0.70 <= len(shared) / len(small_jobs) <= 0.90

    def test_non_dominant_band_not_repetitive(self):
        _corpus, stream = eighty_pct_large().build(seed=9)
        non_large = [a.job for a in stream if band_of(a.job.size_mb).name != "large"]
        repos = [job.repo_id for job in non_large]
        assert len(set(repos)) == len(repos)

    def test_corpus_contains_every_referenced_repo(self):
        corpus, stream = eighty_pct_large().build(seed=10)
        for arrival in stream:
            assert arrival.job.repo_id in corpus
            assert corpus.get(arrival.job.repo_id).size_mb == arrival.job.size_mb


class TestArrivals:
    def test_jobs_arrive_over_time(self):
        _corpus, stream = all_diff_equal().build(seed=11)
        times = [a.at for a in stream]
        assert times[-1] > 0.0
        assert times == sorted(times)

    def test_all_jobs_target_analyzer(self):
        _corpus, stream = all_diff_equal().build(seed=12)
        assert all(a.job.task == "RepositoryAnalyzer" for a in stream)
