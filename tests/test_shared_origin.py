"""Tests for the shared-origin contention extension (A10)."""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import make_scheduler
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def burst_stream(n=6, size=100.0):
    return JobStream(
        arrivals=[
            JobArrival(
                at=0.0,
                job=Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=size),
            )
            for i in range(n)
        ]
    )


def run_with_origin(origin_mbps, n_workers=3, scheduler="round-robin"):
    profile = make_profile(
        *[make_spec(f"w{i + 1}", network=10.0, rw=100.0) for i in range(n_workers)]
    )
    runtime = WorkflowRuntime(
        profile=profile,
        stream=burst_stream(n=n_workers * 2),
        scheduler=make_scheduler(scheduler),
        config=EngineConfig(
            seed=0,
            noise_kind="none",
            noise_params={},
            topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
            shared_origin_mbps=origin_mbps,
        ),
    )
    return runtime.run()


class TestSharedOrigin:
    def test_uncapped_matches_no_origin_closely(self):
        free = run_with_origin(None)
        huge = run_with_origin(10_000.0)
        assert huge.makespan_s == pytest.approx(free.makespan_s, rel=0.02)

    def test_tight_origin_slows_concurrent_downloads(self):
        free = run_with_origin(None)
        tight = run_with_origin(5.0)  # 3 workers at 10 MB/s want 30
        assert tight.makespan_s > 1.5 * free.makespan_s

    def test_data_volume_unchanged_by_contention(self):
        free = run_with_origin(None)
        tight = run_with_origin(5.0)
        assert tight.data_load_mb == pytest.approx(free.data_load_mb)

    def test_origin_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(shared_origin_mbps=0.0)
        with pytest.raises(ValueError):
            EngineConfig(shared_origin_mbps=-5.0)

    def test_locality_worth_more_under_contention(self):
        """Bidding-vs-baseline gap widens when the origin is the
        bottleneck: redundant clones now tax every other download."""
        from repro.experiments.ablations import ablate_shared_origin

        pairs = ablate_shared_origin(capacities=(None, 10.0), seed=11)
        (_free_label, bid_free, base_free), (_tight_label, bid_tight, base_tight) = pairs
        gap_free = base_free.mean_makespan_s / bid_free.mean_makespan_s
        gap_tight = base_tight.mean_makespan_s / bid_tight.mean_makespan_s
        assert gap_tight > gap_free
