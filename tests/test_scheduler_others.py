"""Protocol tests for Spark-style, Matchmaking, Delay and control policies."""

from types import SimpleNamespace

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.schedulers.delay import DelayMasterPolicy, make_delay_policy
from repro.schedulers.matchmaking import make_matchmaking_policy
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.schedulers.spark import SparkMasterPolicy, make_spark_policy
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def quiet_config(seed=0):
    return EngineConfig(
        seed=seed,
        noise_kind="none",
        noise_params={},
        topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
    )


def arrivals(*specs):
    return JobStream(
        arrivals=[
            JobArrival(
                at=at,
                job=Job(job_id=job_id, task=TASK_ANALYZER, repo_id=repo, size_mb=size),
            )
            for job_id, repo, size, at in specs
        ]
    )


def run_with(scheduler, stream, n_workers=3, initial_caches=None, seed=0):
    profile = make_profile(*[make_spec(f"w{i + 1}") for i in range(n_workers)])
    runtime = WorkflowRuntime(
        profile=profile,
        stream=stream,
        scheduler=scheduler,
        config=quiet_config(seed),
        initial_caches=initial_caches,
    )
    return runtime, runtime.run()


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_every_scheduler_completes_a_workflow(self, name):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, float(i)) for i in range(6)])
        _runtime, result = run_with(make_scheduler(name), stream)
        assert result.jobs_completed == 6

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="valid:"):
            make_scheduler("clairvoyant")

    def test_kwargs_forwarded(self):
        policy = make_scheduler("bidding", window_s=0.25)
        assert policy.make_master().window_s == 0.25


class TestSpark:
    def test_balanced_counts(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, 0.0) for i in range(9)])
        runtime, result = run_with(make_spark_policy(use_locality=False), stream)
        assert sorted(result.per_worker_jobs.values()) == [3, 3, 3]

    def test_upfront_plan_covers_all_jobs(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, float(i)) for i in range(6)])
        runtime, _result = run_with(make_spark_policy(), stream)
        assert set(runtime.master.assignments) == {f"j{i}" for i in range(6)}

    def test_locality_preference_uses_initial_caches(self):
        stream = arrivals(*[("j0", "hot", 10.0, 0.0), ("j1", "cold", 10.0, 0.0)])
        runtime, result = run_with(
            make_spark_policy(use_locality=True),
            stream,
            initial_caches={"w2": {"hot": 10.0}},
        )
        assert runtime.master.assignments["j0"] == "w2"

    def test_locality_blind_ignores_caches(self):
        stream = arrivals(("j0", "hot", 10.0, 0.0))
        hits = 0
        for seed in range(8):
            runtime, result = run_with(
                make_spark_policy(use_locality=False),
                stream,
                initial_caches={"w2": {"hot": 10.0}},
                seed=seed,
            )
            hits += runtime.master.assignments["j0"] == "w2"
        # Shuffled executor order: sometimes lands on the holder, mostly not.
        assert hits < 8

    def test_locality_degrades_when_holder_overloaded(self):
        # 9 jobs all local to w1 with wait slots 2: fair share 3 + 2 = 5 cap.
        stream = arrivals(*[(f"j{i}", "hot", 10.0, 0.0) for i in range(9)])
        runtime, result = run_with(
            make_spark_policy(use_locality=True, locality_wait_slots=2),
            stream,
            initial_caches={"w1": {"hot": 10.0}},
        )
        counts = result.per_worker_jobs
        assert counts["w1"] <= 5

    def test_dynamic_jobs_balanced(self):
        # Jobs arriving beyond the upfront plan go least-loaded.
        policy = make_spark_policy(use_locality=False)
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, 0.0) for i in range(3)])
        runtime, _ = run_with(policy, stream)
        master_policy = runtime.master.policy
        extra = Job(job_id="extra", task=TASK_ANALYZER, repo_id="rx", size_mb=10.0)
        master_policy.on_job(extra)
        assert runtime.master.assignments["extra"] in {"w1", "w2", "w3"}

    def test_validation(self):
        with pytest.raises(ValueError):
            SparkMasterPolicy(locality_wait_slots=-1)

    @staticmethod
    def _dynamic_after_early_join(soa):
        """Drive the serve-mode ordering that used to KeyError: a worker
        registers via ``on_worker_joined`` *before* any planning, then
        dynamic jobs arrive with no upfront plan at all."""
        import numpy as np

        policy = SparkMasterPolicy(use_locality=False)
        master = SimpleNamespace(
            worker_names=["w1", "w2", "w3"],
            rng=np.random.default_rng(0),
            fleet=object() if soa else None,
            assignments={},
        )
        master.assign = lambda job, worker: master.assignments.__setitem__(
            job.job_id, worker
        )
        policy.bind(master)
        # Scale-up registers w4 before the policy ever saw a job: only
        # w4 enters the count table ({"w4": 0}), which is non-empty but
        # does not cover the fleet.
        policy.on_worker_joined("w4")
        master.worker_names = ["w1", "w2", "w3", "w4"]
        for i in range(8):
            policy.on_job(Job(job_id=f"d{i}", task=TASK_ANALYZER))
        return master.assignments, dict(policy._planned_counts)

    @pytest.mark.parametrize("soa", [False, True], ids=["scalar", "soa"])
    def test_dynamic_jobs_after_early_join_cover_whole_fleet(self, soa):
        # Regression: the balanced scan KeyError'd on w1..w3 (or, with a
        # defensive .get, skewed everything onto w4) because the
        # partially-seeded count table skipped the rebuild.
        assignments, counts = self._dynamic_after_early_join(soa)
        assert len(assignments) == 8
        assert counts == {"w1": 2, "w2": 2, "w3": 2, "w4": 2}

    def test_dynamic_dispatch_identical_with_fast_path(self):
        scalar, scalar_counts = self._dynamic_after_early_join(False)
        fast, fast_counts = self._dynamic_after_early_join(True)
        assert fast == scalar
        assert fast_counts == scalar_counts


class TestMatchmaking:
    def test_local_job_preferred_on_first_attempt(self):
        # Prime holdings via a first wave, then check the second wave.
        stream = arrivals(
            ("seed-a", "ra", 50.0, 0.0),
            ("seed-b", "rb", 50.0, 0.0),
            ("repeat-a", "ra", 50.0, 30.0),
        )
        runtime, result = run_with(make_matchmaking_policy(), stream, n_workers=2)
        holder = runtime.master.assignments["seed-a"]
        assert runtime.master.assignments["repeat-a"] == holder

    def test_second_attempt_forces_acceptance(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, 0.0) for i in range(4)])
        _runtime, result = run_with(make_matchmaking_policy(heartbeat_s=0.5), stream)
        assert result.jobs_completed == 4

    def test_heartbeat_validated(self):
        with pytest.raises(ValueError):
            make_matchmaking_policy(heartbeat_s=0.0).make_worker()


class TestDelay:
    def test_skip_count_eventually_forces(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, 0.0) for i in range(5)])
        _runtime, result = run_with(make_delay_policy(max_skips=2), stream)
        assert result.jobs_completed == 5

    def test_local_jobs_jump_the_queue(self):
        stream = arrivals(
            ("seed", "hot", 50.0, 0.0),
            ("other", "cold", 50.0, 20.0),
            ("repeat", "hot", 50.0, 20.0),
        )
        runtime, _result = run_with(make_delay_policy(max_skips=10), stream, n_workers=2)
        holder = runtime.master.assignments["seed"]
        assert runtime.master.assignments["repeat"] == holder

    def test_zero_skips_behaves_like_fifo(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, 0.0) for i in range(4)])
        _runtime, result = run_with(make_delay_policy(max_skips=0), stream)
        assert result.jobs_completed == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayMasterPolicy(max_skips=-1)
        with pytest.raises(ValueError):
            make_delay_policy(heartbeat_s=0.0).make_worker()


class TestControls:
    def test_round_robin_cycles(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, float(i)) for i in range(6)])
        runtime, result = run_with(make_scheduler("round-robin"), stream)
        assert sorted(result.per_worker_jobs.values()) == [2, 2, 2]
        # Arrival order maps cyclically.
        assert runtime.master.assignments["j0"] != runtime.master.assignments["j1"]

    def test_random_is_seed_deterministic(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, 0.0) for i in range(10)])
        r1, _ = run_with(make_scheduler("random"), stream, seed=3)
        r2, _ = run_with(make_scheduler("random"), stream, seed=3)
        assert r1.master.assignments == r2.master.assignments

    def test_random_varies_across_seeds(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, 0.0) for i in range(10)])
        r1, _ = run_with(make_scheduler("random"), stream, seed=3)
        r2, _ = run_with(make_scheduler("random"), stream, seed=4)
        assert r1.master.assignments != r2.master.assignments
