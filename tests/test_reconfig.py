"""The live-reconfiguration subsystem (``repro.reconfig``): plans,
the controller's migrate/rebind handshake, scheduler hot-swap, and the
autoscaler's rebalance trigger.

The migration battery proper -- random interleavings against a
reference model -- lives in ``test_reconfig_property.py``; this file
pins the concrete mechanics: plan validation and JSON round-trips,
checkpoint/rebind/prewarm trace sequences, swap bookkeeping transfer,
the <2 %% no-reconfig overhead contract (behavioural half: a trivial
plan changes nothing), and rebalance-on-scale-up.
"""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.reconfig import JobMigration, ReconfigPlan, SchedulerSwap
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def stream_of(n=10, size=50.0):
    return JobStream(
        arrivals=[
            JobArrival(
                at=float(i),
                job=Job(
                    job_id=f"j{i}",
                    task=TASK_ANALYZER,
                    repo_id=f"r{i % 3}",
                    size_mb=size,
                ),
            )
            for i in range(n)
        ]
    )


def run_with_plan(scheduler, plan, seed=3, check=True, n_jobs=10):
    runtime = WorkflowRuntime(
        profile=make_profile(make_spec("w1"), make_spec("w2"), make_spec("w3")),
        stream=stream_of(n_jobs),
        scheduler=make_scheduler(scheduler),
        config=EngineConfig(
            seed=seed,
            noise_kind="none",
            noise_params={},
            topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
            trace=True,
            max_sim_time=5000.0,
            check=check,
        ),
        reconfig=plan,
    )
    return runtime, runtime.run()


class TestPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobMigration(at_s=-1.0)
        with pytest.raises(ValueError):
            JobMigration(at_s=1.0, max_jobs=0)
        with pytest.raises(ValueError):
            SchedulerSwap(at_s=1.0, scheduler="no-such-scheduler")
        with pytest.raises(ValueError):
            ReconfigPlan.from_dict({"nonsense": []})

    def test_trivial_plan(self):
        assert ReconfigPlan().is_trivial
        assert not ReconfigPlan(migrations=(JobMigration(at_s=1.0),)).is_trivial
        assert not ReconfigPlan(
            swaps=(SchedulerSwap(at_s=1.0, scheduler="baseline"),)
        ).is_trivial

    def test_dict_round_trip(self):
        plan = ReconfigPlan(
            migrations=(
                JobMigration(at_s=2.0, source="w1", max_jobs=3, include_running=True),
            ),
            swaps=(
                SchedulerSwap(
                    at_s=4.0,
                    scheduler="matchmaking",
                    scheduler_kwargs={"response_timeout_s": 10.0},
                ),
            ),
        )
        assert ReconfigPlan.from_dict(plan.to_dict()) == plan

    def test_swap_kwargs_normalised_for_hashing(self):
        # Dict-valued kwargs are frozen to sorted tuples so plans stay
        # hashable and equal regardless of insertion order.
        first = SchedulerSwap(
            at_s=1.0, scheduler="bidding", scheduler_kwargs={"a": 1, "b": 2}
        )
        second = SchedulerSwap(
            at_s=1.0, scheduler="bidding", scheduler_kwargs={"b": 2, "a": 1}
        )
        assert first == second
        assert hash(first) == hash(second)
        assert first.kwargs == {"a": 1, "b": 2}


class TestMigration:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_migration_preserves_completion_on_every_scheduler(self, scheduler):
        plan = ReconfigPlan(
            migrations=(JobMigration(at_s=2.5, max_jobs=2, include_running=True),)
        )
        runtime, result = run_with_plan(scheduler, plan)
        assert result.jobs_completed == 10
        # The checkpoint/rebind handshake is visible in the trace and
        # the invariant monitor saw it settle cleanly (no raise).
        kinds = [event.kind for event in runtime.metrics.trace]
        if runtime.metrics.jobs_migrated:
            assert "migrate_checkpoint" in kinds
            assert "migrate_rebind" in kinds

    def test_prewarm_inserts_into_target_cache(self):
        plan = ReconfigPlan(
            migrations=(JobMigration(at_s=2.5, max_jobs=2, include_running=True),)
        )
        runtime, result = run_with_plan("round-robin", plan)
        assert result.jobs_completed == 10
        prewarms = runtime.metrics.trace.of_kind("migrate_prewarm")
        for event in prewarms:
            # The repo the job carries is resident on the target now.
            assert runtime.workers[event.worker].cache.peek(event.detail)

    def test_explicit_source_and_target(self):
        plan = ReconfigPlan(
            migrations=(
                JobMigration(
                    at_s=2.5,
                    source="w1",
                    target="w2",
                    max_jobs=2,
                    include_running=True,
                ),
            )
        )
        runtime, result = run_with_plan("round-robin", plan)
        assert result.jobs_completed == 10
        for event in runtime.metrics.trace.of_kind("migrate_rebind"):
            assert event.worker == "w2"

    def test_migration_to_dead_fleet_retries_not_crashes(self):
        # A migration aimed at a missing source simply finds nothing.
        plan = ReconfigPlan(
            migrations=(JobMigration(at_s=2.5, source="no-such-worker"),)
        )
        _, result = run_with_plan("round-robin", plan)
        assert result.jobs_completed == 10


class TestSwap:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_swap_to_baseline_finishes_every_job(self, scheduler):
        if scheduler == "baseline":
            pytest.skip("identity swap covered separately")
        plan = ReconfigPlan(swaps=(SchedulerSwap(at_s=3.0, scheduler="baseline"),))
        runtime, result = run_with_plan(scheduler, plan)
        assert result.jobs_completed == 10
        assert runtime.metrics.scheduler_swaps == 1
        assert runtime.scheduler.name == "baseline"

    def test_swap_records_export_import_pair(self):
        plan = ReconfigPlan(swaps=(SchedulerSwap(at_s=3.0, scheduler="bidding"),))
        runtime, result = run_with_plan("baseline", plan)
        assert result.jobs_completed == 10
        kinds = [kind for _, kind, _ in runtime.reconfig_controller.events]
        assert "swap_done" in kinds

    def test_swap_into_same_scheduler_is_harmless(self):
        plan = ReconfigPlan(swaps=(SchedulerSwap(at_s=3.0, scheduler="bidding"),))
        _, result = run_with_plan("bidding", plan)
        assert result.jobs_completed == 10

    def test_trivial_plan_changes_nothing(self):
        # The behavioural half of the <2 % overhead contract: with an
        # empty plan no controller starts and the run is bit-identical
        # to one with no plan at all.
        _, with_empty = run_with_plan("bidding", ReconfigPlan())
        runtime, without = run_with_plan("bidding", None)
        assert runtime.reconfig_controller is None
        assert with_empty.makespan_s == without.makespan_s
        assert with_empty.jobs_completed == without.jobs_completed

    def test_swap_is_deterministic(self):
        plan = ReconfigPlan(
            migrations=(JobMigration(at_s=2.0, max_jobs=2),),
            swaps=(SchedulerSwap(at_s=4.0, scheduler="baseline"),),
        )
        first_rt, first = run_with_plan("bidding", plan)
        second_rt, second = run_with_plan("bidding", plan)
        assert first.makespan_s == second.makespan_s
        events = lambda rt: [
            (e.time, e.kind, e.job_id, e.worker)
            for e in rt.metrics.trace
            if e.kind.startswith(("migrate_", "swap_"))
        ]
        assert events(first_rt) == events(second_rt)


class TestAutoscalerRebalance:
    def test_scale_up_triggers_migration(self):
        from repro.cluster.profiles import all_equal
        from repro.engine.runtime import EngineConfig
        from repro.serve import (
            AdmissionConfig,
            AutoscalerConfig,
            PoissonArrivals,
            ServiceConfig,
            ServiceRuntime,
        )

        runtime = ServiceRuntime(
            profile=all_equal(),
            scheduler=make_scheduler("bidding"),
            arrivals=PoissonArrivals(rate=4.0),
            admission_config=AdmissionConfig(queue_cap=64, policy="delay"),
            autoscaler_config=AutoscalerConfig(
                max_workers=8, rebalance=True, rebalance_max_jobs=2
            ),
            service_config=ServiceConfig(duration_s=40.0),
            config=EngineConfig(seed=11, trace=True, check=True),
        )
        report = runtime.run()
        assert report.completed == report.admitted
        assert runtime.reconfig_controller is not None
        if report.scale_ups:
            # Every scale-up asked the controller to shed load toward
            # the (cold but idle) newcomer.
            kinds = [kind for _, kind, _ in runtime.reconfig_controller.events]
            assert any(kind.startswith("migrate_") for kind in kinds)

    def test_rebalance_off_means_no_controller(self):
        from repro.cluster.profiles import all_equal
        from repro.serve import (
            AdmissionConfig,
            AutoscalerConfig,
            PoissonArrivals,
            ServiceConfig,
            ServiceRuntime,
        )

        runtime = ServiceRuntime(
            profile=all_equal(),
            scheduler=make_scheduler("bidding"),
            arrivals=PoissonArrivals(rate=2.0),
            admission_config=AdmissionConfig(queue_cap=32),
            autoscaler_config=AutoscalerConfig(max_workers=8),
            service_config=ServiceConfig(duration_s=30.0),
            config=EngineConfig(seed=11),
        )
        report = runtime.run()
        assert report.completed == report.admitted
        assert runtime.reconfig_controller is None
