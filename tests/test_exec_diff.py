"""The differential harness: the sim is the oracle, reality must agree.

Tier-1 runs one clean cell and one kill cell at a small job count; the
full 8-scheduler matrix (what CI's dedicated smoke job and `repro exec
--diff` run) is marked ``slow`` for the nightly sweep.
"""

import pytest

from repro import run_service
from repro.exec.diff import (
    SMOKE_JOBS,
    diff_matrix,
    run_diff,
    smoke_stream,
)
from repro.exec.pool import KillSpec
from repro.schedulers.registry import SCHEDULERS

FAST = dict(n_jobs=10, time_scale=0.005)


class TestSmokeScenario:
    def test_stream_is_deterministic_and_mixed(self):
        jobs_a = list(smoke_stream(seed=3))
        jobs_b = list(smoke_stream(seed=3))
        assert [(j.at, j.job) for j in jobs_a] == [(j.at, j.job) for j in jobs_b]
        assert len(jobs_a) == SMOKE_JOBS
        # Every 9th job is data-free, the rest carry a repository.
        data_free = [j.job.repo_id is None for j in jobs_a]
        assert sum(data_free) == SMOKE_JOBS // 9
        assert list(smoke_stream(seed=4)) != jobs_a


class TestCleanDiff:
    def test_baseline_cell_agrees(self):
        cell = run_diff("baseline", **FAST)
        assert cell.ok, cell.divergences
        assert cell.real["completed"] == cell.sim["completed"] == 10
        assert cell.real["crashes"] == 0
        assert cell.real["cache_hits"] == cell.sim["cache_hits"]
        assert cell.real["data_load_mb"] == pytest.approx(cell.sim["data_load_mb"])

    def test_bidding_cell_agrees(self):
        # Contest timing windows make bidding the scheduler most likely
        # to expose a capture-seam bug; keep it in tier-1.
        cell = run_diff("bidding", **FAST)
        assert cell.ok, cell.divergences

    def test_divergence_report_shape(self):
        report = diff_matrix(schedulers=("baseline",), **FAST)
        assert report.ok
        data = report.to_dict()
        assert data["ok"] is True and data["kill"] is None
        assert [c["scheduler"] for c in data["cells"]] == ["baseline"]
        lines = report.summary_lines()
        assert any("baseline" in line and "OK" in line for line in lines)

    def test_report_writes_json(self, tmp_path):
        report = diff_matrix(schedulers=("baseline",), **FAST)
        path = report.write(str(tmp_path / "diff.json"))
        import json

        with open(path, encoding="utf-8") as handle:
            assert json.load(handle)["ok"] is True


class TestKillDiff:
    def test_killing_a_worker_mid_run_loses_no_jobs(self):
        cell = run_diff("baseline", kill=KillSpec("w1", after_done=3), **FAST)
        assert cell.ok, cell.divergences
        assert cell.real["crashes"] == 1
        assert cell.real["conserved"] is True
        # The kill fires mid-run, so at least one orphan was re-homed.
        assert cell.real["redispatches"] >= 1


@pytest.mark.slow
class TestFullMatrix:
    def test_every_scheduler_survives_the_differential(self):
        report = diff_matrix(**FAST)
        assert report.ok, "\n".join(report.summary_lines())
        assert len(report.cells) == len(SCHEDULERS)


class TestRunServiceRealBackend:
    def test_real_backend_smoke(self):
        sim = run_service(
            "baseline", rate=2.0, duration_s=10.0, seed=11, backend="sim"
        )
        real = run_service(
            "baseline", rate=2.0, duration_s=10.0, seed=11,
            backend="real", time_scale=0.005,
        )
        # The real run executed the same admitted set, conserving jobs
        # and reproducing the sim's locality outcome.
        assert real.admitted == sim.admitted
        assert real.completed + real.failed == real.admitted
        assert real.crashes == 0
        assert real.cache_hits == sim.cache_hits
        assert real.data_load_mb == pytest.approx(sim.data_load_mb, abs=1e-6)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_service("baseline", rate=1.0, duration_s=5.0, backend="bogus")
