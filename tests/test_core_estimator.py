"""Unit tests for Listing 2's cost estimation and the speed models."""

import pytest

from conftest import make_spec, make_worker
from repro.core.estimator import CostEstimate, CostEstimator
from repro.core.learning import (
    EWMASpeedModel,
    HistoricAverageSpeedModel,
    NominalSpeedModel,
    make_speed_model,
)
from repro.workload.job import Job


def analysis_job(repo="r1", size=100.0, compute=0.0, job_id="j1"):
    return Job(
        job_id=job_id,
        task="RepositoryAnalyzer",
        repo_id=repo,
        size_mb=size,
        base_compute_s=compute,
    )


class TestCostEstimate:
    def test_totals(self):
        estimate = CostEstimate(workload_s=10.0, transfer_s=5.0, processing_s=2.0)
        assert estimate.total_s == pytest.approx(17.0)
        assert estimate.own_cost_s == pytest.approx(7.0)


class TestEstimator:
    def test_transfer_time_uses_nominal_network(self, sim):
        worker = make_worker(sim, make_spec(network=10.0))
        estimator = CostEstimator(worker)
        assert estimator.transfer_time(analysis_job(size=100.0)) == pytest.approx(10.0)

    def test_transfer_includes_link_latency(self, sim):
        worker = make_worker(sim, make_spec(network=10.0, link_latency=0.5))
        estimator = CostEstimator(worker)
        assert estimator.transfer_time(analysis_job(size=100.0)) == pytest.approx(10.5)

    def test_cached_repo_transfers_free(self, sim):
        worker = make_worker(sim)
        worker.cache.insert("r1", 100.0)
        estimator = CostEstimator(worker)
        assert estimator.transfer_time(analysis_job()) == 0.0

    def test_data_free_job_transfers_free(self, sim):
        worker = make_worker(sim)
        estimator = CostEstimator(worker)
        job = Job(job_id="s", task="t", base_compute_s=1.0)
        assert estimator.transfer_time(job) == 0.0

    def test_processing_time(self, sim):
        worker = make_worker(sim, make_spec(rw=50.0))
        estimator = CostEstimator(worker)
        assert estimator.processing_time(analysis_job(size=100.0)) == pytest.approx(2.0)

    def test_processing_scales_fixed_compute_by_cpu(self, sim):
        worker = make_worker(sim, make_spec(cpu_factor=2.0))
        estimator = CostEstimator(worker)
        job = analysis_job(size=0.0, repo=None, compute=4.0)
        assert estimator.processing_time(job) == pytest.approx(2.0)

    def test_workload_cost_sums_unfinished(self, sim):
        worker = make_worker(sim)
        worker.unfinished["a"] = 10.0
        worker.unfinished["b"] = 5.0
        estimator = CostEstimator(worker)
        assert estimator.workload_cost() == pytest.approx(15.0)

    def test_full_estimate_listing2_sum(self, sim):
        worker = make_worker(sim, make_spec(network=10.0, rw=50.0))
        worker.unfinished["queued"] = 7.0
        estimator = CostEstimator(worker)
        estimate = estimator.estimate(analysis_job(size=100.0))
        assert estimate.workload_s == pytest.approx(7.0)
        assert estimate.transfer_s == pytest.approx(10.0)
        assert estimate.processing_s == pytest.approx(2.0)
        assert estimate.total_s == pytest.approx(19.0)

    def test_pending_downloads_count_as_local_by_default(self, sim):
        worker = make_worker(sim)
        worker.enqueue(analysis_job(repo="r9", size=50.0, job_id="queued"), 5.0)
        estimator = CostEstimator(worker)
        assert estimator.transfer_time(analysis_job(repo="r9", size=50.0, job_id="new")) == 0.0

    def test_pending_downloads_ignorable(self, sim):
        worker = make_worker(sim)
        worker.enqueue(analysis_job(repo="r9", size=50.0, job_id="queued"), 5.0)
        estimator = CostEstimator(worker, count_pending_downloads=False)
        assert estimator.transfer_time(
            analysis_job(repo="r9", size=50.0, job_id="new")
        ) == pytest.approx(5.0)


class TestSpeedModels:
    def test_nominal_reads_spec(self, sim):
        worker = make_worker(sim, make_spec(network=12.0, rw=34.0))
        model = NominalSpeedModel()
        assert model.network_mbps(worker) == 12.0
        assert model.rw_mbps(worker) == 34.0

    def test_historic_average_tracks_measurements(self, sim):
        worker = make_worker(sim, make_spec(network=10.0))
        worker.machine.record_network_sample(20.0)
        model = HistoricAverageSpeedModel()
        # Seeded with nominal 10, one sample of 20 -> mean 15.
        assert model.network_mbps(worker) == pytest.approx(15.0)

    def test_ewma_weights_recent(self, sim):
        worker = make_worker(sim, make_spec(network=10.0))
        model = EWMASpeedModel(alpha=0.5)
        assert model.network_mbps(worker) == pytest.approx(10.0)
        worker.machine.record_network_sample(30.0)
        assert model.network_mbps(worker) == pytest.approx(20.0)
        worker.machine.record_network_sample(30.0)
        assert model.network_mbps(worker) == pytest.approx(25.0)

    def test_ewma_rw_stream_independent(self, sim):
        worker = make_worker(sim, make_spec(rw=50.0))
        model = EWMASpeedModel(alpha=0.5)
        worker.machine.record_rw_sample(100.0)
        assert model.rw_mbps(worker) == pytest.approx(75.0)

    def test_ewma_validates_alpha(self):
        with pytest.raises(ValueError):
            EWMASpeedModel(alpha=0.0)
        with pytest.raises(ValueError):
            EWMASpeedModel(alpha=1.5)

    def test_factory(self):
        assert isinstance(make_speed_model("nominal"), NominalSpeedModel)
        assert isinstance(make_speed_model("historic"), HistoricAverageSpeedModel)
        assert isinstance(make_speed_model("ewma"), EWMASpeedModel)
        with pytest.raises(KeyError):
            make_speed_model("psychic")
