"""Sim-time attribution: totals, compute derivation, rendering."""

from repro.metrics.trace import Trace
from repro.obs import attribute, build_spans, render_attribution


def two_job_trace() -> Trace:
    trace = Trace()
    # j1: 1s scheduling, 1s queue, 4s execute containing a 3s transfer.
    trace.record(0.0, "submitted", "j1")
    trace.record(1.0, "assigned", "j1", "w1")
    trace.record(2.0, "started", "j1", "w1")
    trace.record(2.0, "download_started", "j1", "w1")
    trace.record(5.0, "download_finished", "j1", "w1", 42.0)
    trace.record(6.0, "completed", "j1", "w1")
    # j2: instant assignment, pure compute.
    trace.record(0.0, "submitted", "j2")
    trace.record(0.0, "assigned", "j2", "w2")
    trace.record(0.0, "started", "j2", "w2")
    trace.record(2.0, "completed", "j2", "w2")
    return trace


class TestAttribute:
    def test_component_totals(self):
        trace = two_job_trace()
        attribution = attribute(trace, makespan=6.0, worker_count=2)
        assert attribution.jobs == 2
        assert attribution.row("job").total_s == 8.0  # 6 + 2
        assert attribution.row("schedule").total_s == 1.0
        assert attribution.row("queued").total_s == 1.0
        assert attribution.row("execute").total_s == 6.0  # 4 + 2
        assert attribution.row("transfer").total_s == 3.0
        # compute = per-job max(0, execute - transfer) = (4-3) + 2.
        assert attribution.row("compute").total_s == 3.0
        assert attribution.row("compute").count == 2

    def test_compute_clamped_at_zero(self):
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        trace.record(0.0, "assigned", "j1", "w1")
        trace.record(0.0, "started", "j1", "w1")
        # Transfer longer than the execute window (prefetch pattern).
        trace.record(0.0, "download_started", "j1", "w1")
        trace.record(5.0, "download_finished", "j1", "w1", 10.0)
        trace.record(1.0, "completed", "j1", "w1")
        attribution = attribute(trace)
        assert attribution.row("compute").total_s == 0.0

    def test_fleet_busy_fraction(self):
        trace = two_job_trace()
        attribution = attribute(trace, makespan=6.0, worker_count=2)
        # 6 execute-seconds over 2 workers * 6s of wall time.
        assert attribution.fleet_busy_fraction == 6.0 / 12.0
        # Without a worker count the fraction is unknown, not wrong.
        assert attribute(trace, makespan=6.0).fleet_busy_fraction is None

    def test_mean_uses_component_count(self):
        attribution = attribute(two_job_trace())
        transfer = attribution.row("transfer")
        assert transfer.count == 1
        assert transfer.mean_s == 3.0

    def test_rows_follow_layout_order(self):
        attribution = attribute(two_job_trace())
        names = [row.component for row in attribution.rows]
        assert names == ["job", "schedule", "queued", "execute", "transfer", "compute"]

    def test_empty_trace(self):
        attribution = attribute(Trace())
        assert attribution.rows == ()
        assert attribution.jobs == 0


class TestRender:
    def test_render_contains_rows_and_bars(self):
        trace = two_job_trace()
        attribution = attribute(trace, makespan=6.0, worker_count=2)
        text = render_attribution(attribution)
        assert "time attribution (2 jobs" in text
        assert "transfer" in text and "compute" in text
        assert "#" in text  # proportional bars
        assert "fleet busy fraction: 50.0%" in text

    def test_spans_reused_when_supplied(self):
        trace = two_job_trace()
        spans = build_spans(trace)
        assert attribute(trace, spans) == attribute(trace)
