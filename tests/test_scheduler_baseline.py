"""Protocol tests for Crossflow's Baseline scheduler (Section 4)."""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.schedulers.baseline import BaselineMasterPolicy, make_baseline_policy
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def quiet_config(seed=0):
    return EngineConfig(
        seed=seed,
        noise_kind="none",
        noise_params={},
        topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
    )


def arrivals(*specs):
    return JobStream(
        arrivals=[
            JobArrival(
                at=at,
                job=Job(
                    job_id=job_id,
                    task=TASK_ANALYZER,
                    repo_id=repo,
                    size_mb=size,
                ),
            )
            for job_id, repo, size, at in specs
        ]
    )


def runtime_for(stream, n_workers=3, requeue="front", initial_caches=None):
    profile = make_profile(*[make_spec(f"w{i + 1}") for i in range(n_workers)])
    return WorkflowRuntime(
        profile=profile,
        stream=stream,
        scheduler=make_baseline_policy(requeue=requeue),
        config=quiet_config(),
        initial_caches=initial_caches,
    )


class TestColdCacheBehaviour:
    def test_cold_job_rejected_before_acceptance(self):
        """First-time jobs are declined: "when executing the pipeline for
        the first time, all worker nodes will end up rejecting
        repository-related jobs"."""
        runtime = runtime_for(arrivals(("j0", "r0", 10.0, 0.0)))
        result = runtime.run()
        assert result.rejections >= 1
        assert result.jobs_completed == 1

    def test_every_job_completes_despite_rejections(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, float(i)) for i in range(12)])
        runtime = runtime_for(stream)
        result = runtime.run()
        assert result.jobs_completed == 12
        assert result.cache_misses == 12  # all distinct, all cold

    def test_worker_declines_each_job_at_most_once(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, 0.0) for i in range(6)])
        runtime = runtime_for(stream)
        runtime.metrics.trace.enabled = True
        runtime.run()
        seen = set()
        for event in runtime.metrics.trace.of_kind("rejected"):
            key = (event.job_id, event.worker)
            assert key not in seen, f"{key} declined twice"
            seen.add(key)

    def test_data_free_jobs_accepted_first_time(self):
        stream = JobStream(
            arrivals=[
                JobArrival(at=0.0, job=Job(job_id="s", task=TASK_ANALYZER, base_compute_s=1.0))
            ]
        )
        runtime = runtime_for(stream)
        result = runtime.run()
        assert result.rejections == 0


class TestLocalityAcceptance:
    def test_cached_worker_accepts_without_rejection(self):
        stream = arrivals(("j0", "hot", 10.0, 0.0))
        runtime = runtime_for(
            stream, initial_caches={"w1": {"hot": 10.0}}
        )
        result = runtime.run()
        assert runtime.master.assignments["j0"] == "w1"
        assert result.cache_misses == 0

    def test_busy_holder_forces_redundant_clone(self):
        """The paper's stated weakness: a busy holder means some other
        node is eventually forced to clone the repository again."""
        stream = arrivals(
            ("blocker", "big", 2000.0, 0.0),  # w1 busy for ~200 s
            ("j1", "hot", 10.0, 5.0),
        )
        runtime = runtime_for(
            stream,
            n_workers=2,
            initial_caches={"w1": {"hot": 10.0, "big": 2000.0}},
        )
        result = runtime.run()
        # w1 is stuck on the blocker, so w2 must take j1 on second offer.
        assert runtime.master.assignments["j1"] == "w2"
        assert result.cache_misses >= 1


class TestRequeueVariants:
    @pytest.mark.parametrize("requeue", ["front", "back"])
    def test_both_variants_complete(self, requeue):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, 0.0) for i in range(8)])
        result = runtime_for(stream, requeue=requeue).run()
        assert result.jobs_completed == 8

    def test_invalid_requeue_rejected(self):
        with pytest.raises(ValueError):
            BaselineMasterPolicy(requeue="sideways")

    def test_invalid_heartbeat_rejected(self):
        with pytest.raises(ValueError):
            make_baseline_policy(heartbeat_s=0.0).make_worker()


class TestPullDiscipline:
    def test_worker_executes_one_job_at_a_time(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 100.0, 0.0) for i in range(6)])
        runtime = runtime_for(stream, n_workers=2)
        runtime.metrics.trace.enabled = True
        runtime.run()
        # Reconstruct per-worker concurrency from the trace.
        running = {name: 0 for name in runtime.workers}
        peak = 0
        for event in runtime.metrics.trace:
            if event.kind == "started":
                running[event.worker] += 1
                peak = max(peak, max(running.values()))
            elif event.kind == "completed" and event.worker is not None:
                running[event.worker] -= 1
        assert peak == 1

    def test_offers_only_go_to_pulling_workers(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 20.0, 0.0) for i in range(4)])
        runtime = runtime_for(stream, n_workers=2)
        runtime.metrics.trace.enabled = True
        runtime.run()
        offers = runtime.metrics.trace.of_kind("offered")
        assert offers, "expected offers to be traced"
        # An offer must never target a worker that is mid-execution.
        for offer in offers:
            starts = [
                e
                for e in runtime.metrics.trace
                if e.kind == "started" and e.worker == offer.worker and e.time <= offer.time
            ]
            ends = [
                e
                for e in runtime.metrics.trace
                if e.kind == "completed" and e.worker == offer.worker and e.time <= offer.time
            ]
            assert len(starts) == len(ends), (
                f"offer to {offer.worker} at {offer.time} while executing"
            )
