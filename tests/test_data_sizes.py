"""Unit tests for size bands and mixtures."""

import numpy as np
import pytest

from repro.data.sizes import (
    BANDS,
    LARGE,
    MEDIUM,
    SMALL,
    SizeBand,
    SizeMixture,
    band_by_name,
    band_of,
    equal_mixture,
    mostly_large,
    mostly_small,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBands:
    def test_canonical_bands_cover_paper_range(self):
        assert SMALL.lo_mb == 1.0
        assert LARGE.hi_mb == 1024.0
        # Bands tile contiguously.
        assert SMALL.hi_mb == MEDIUM.lo_mb
        assert MEDIUM.hi_mb == LARGE.lo_mb

    def test_sample_within_band(self, rng):
        for band in BANDS:
            for _ in range(100):
                assert band.lo_mb <= band.sample(rng) < band.hi_mb

    def test_contains(self):
        assert SMALL.contains(25.0)
        assert not SMALL.contains(75.0)

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            SizeBand("bad", 10.0, 5.0)
        with pytest.raises(ValueError):
            SizeBand("bad", 0.0, 5.0)

    def test_band_by_name(self):
        assert band_by_name("medium") is MEDIUM
        with pytest.raises(KeyError):
            band_by_name("huge")

    def test_band_of_clamps_extremes(self):
        assert band_of(0.5) is SMALL
        assert band_of(2000.0) is LARGE
        assert band_of(100.0) is MEDIUM


class TestMixture:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SizeMixture.of(small=0.5, large=0.3)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            SizeMixture.of(small=1.5, large=-0.5)

    def test_unknown_band_rejected(self):
        with pytest.raises(ValueError):
            SizeMixture((("gigantic", 1.0),))

    def test_sampling_respects_weights(self, rng):
        mixture = mostly_small()
        bands = [band_of(mixture.sample(rng)).name for _ in range(3000)]
        small_share = bands.count("small") / len(bands)
        assert 0.75 <= small_share <= 0.85

    def test_equal_mixture_is_balanced(self, rng):
        mixture = equal_mixture()
        bands = [mixture.sample_band(rng).name for _ in range(6000)]
        for name in ("small", "medium", "large"):
            assert 0.28 <= bands.count(name) / len(bands) <= 0.38

    def test_mostly_large_mean_exceeds_mostly_small(self):
        # 0.8*762 + 0.1*275 + 0.1*25.5 vs 0.8*25.5 + 0.1*275 + 0.1*762:
        # roughly a 5x gap between the two canonical mixtures.
        assert mostly_large().mean_mb() > 4 * mostly_small().mean_mb()

    def test_mean_formula(self):
        pure_small = SizeMixture.of(small=1.0)
        assert pure_small.mean_mb() == pytest.approx((1.0 + 50.0) / 2)

    def test_custom_share(self, rng):
        mixture = mostly_large(large_share=0.6)
        weights = dict(mixture.weights)
        assert weights["large"] == pytest.approx(0.6)
        assert weights["small"] == pytest.approx(0.2)
