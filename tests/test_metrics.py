"""Unit tests for trace, collector and report."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.report import (
    RunResult,
    aggregate,
    format_table,
    mean,
    percent_change,
    speedup,
)
from repro.metrics.trace import Trace, TraceEvent
from repro.workload.job import Job


def make_job(i=0):
    return Job(job_id=f"j{i}", task="t", repo_id=f"r{i}", size_mb=10.0)


class TestTrace:
    def test_record_and_query(self):
        trace = Trace()
        trace.record(1.0, "submitted", "j1")
        trace.record(2.0, "assigned", "j1", worker="w1")
        trace.record(3.0, "completed", "j1", worker="w1")
        assert len(trace) == 3
        assert [e.kind for e in trace.for_job("j1")] == [
            "submitted",
            "assigned",
            "completed",
        ]
        assert len(trace.of_kind("assigned")) == 1

    def test_unknown_kind_rejected(self):
        trace = Trace()
        with pytest.raises(ValueError):
            trace.record(1.0, "teleported", "j1")
        with pytest.raises(ValueError):
            trace.of_kind("teleported")
        with pytest.raises(ValueError):
            TraceEvent(1.0, "bogus", "j1")

    def test_disabled_trace_is_noop(self):
        trace = Trace(enabled=False)
        trace.record(1.0, "submitted", "j1")
        assert len(trace) == 0

    def test_job_latency(self):
        trace = Trace()
        trace.record(1.0, "submitted", "j1")
        trace.record(9.0, "completed", "j1")
        assert trace.job_latency("j1") == pytest.approx(8.0)
        assert trace.job_latency("missing") is None

    def test_allocation_delay(self):
        trace = Trace()
        trace.record(1.0, "submitted", "j1")
        trace.record(2.5, "assigned", "j1", worker="w")
        assert trace.allocation_delay("j1") == pytest.approx(1.5)

    def test_first_returns_earliest(self):
        trace = Trace()
        trace.record(5.0, "offered", "j1", worker="a")
        trace.record(7.0, "offered", "j1", worker="b")
        assert trace.first("offered", "j1").worker == "a"

    def test_index_catches_up_on_appends(self):
        trace = Trace()
        trace.record(1.0, "submitted", "j1")
        assert len(trace.for_job("j1")) == 1
        # Appends after a query land past the watermark and are picked up.
        trace.record(2.0, "assigned", "j1", worker="w1")
        assert [e.kind for e in trace.for_job("j1")] == ["submitted", "assigned"]

    def test_index_rebuilds_after_truncation(self):
        trace = Trace()
        for t, kind in [(1.0, "submitted"), (2.0, "assigned"), (3.0, "completed")]:
            trace.record(t, kind, "j1", worker="w1")
        assert len(trace.for_job("j1")) == 3
        # Truncation overshoots the watermark -> full rebuild.
        trace.events[:] = trace.events[:1]
        assert [e.kind for e in trace.for_job("j1")] == ["submitted"]

    def test_index_blind_to_same_length_mutation_until_reset(self):
        # The documented contract in Trace.for_job: in-place replacement
        # at the same length is NOT detected; post-hoc surgery must
        # reset _by_job to force a rebuild.
        trace = Trace()
        trace.record(1.0, "submitted", "j1")
        trace.record(2.0, "completed", "j1", worker="w1")
        assert len(trace.for_job("j1")) == 2
        trace.events[1] = TraceEvent(2.0, "completed", "j2", "w1")
        # Stale: the index still serves the old event under j1.
        assert len(trace.for_job("j1")) == 2
        assert trace.for_job("j2") == []
        trace._by_job = None
        assert [e.kind for e in trace.for_job("j1")] == ["submitted"]
        assert [e.job_id for e in trace.for_job("j2")] == ["j2"]


class TestCollector:
    def test_makespan(self):
        metrics = MetricsCollector()
        metrics.run_started(10.0)
        metrics.run_finished(250.0)
        assert metrics.makespan == pytest.approx(240.0)

    def test_makespan_requires_completion(self):
        metrics = MetricsCollector()
        metrics.run_started(0.0)
        with pytest.raises(RuntimeError):
            _ = metrics.makespan

    def test_cache_counters_aggregate_over_workers(self):
        metrics = MetricsCollector()
        job = make_job()
        metrics.record_cache_miss(1.0, "w1", job)
        metrics.record_cache_miss(2.0, "w2", job)
        metrics.record_cache_hit(3.0, "w1", job)
        metrics.record_download(4.0, "w1", job, 10.0)
        metrics.record_download(5.0, "w2", job, 10.0)
        assert metrics.total_cache_misses == 2
        assert metrics.total_cache_hits == 1
        assert metrics.total_mb_downloaded == pytest.approx(20.0)
        assert metrics.workers["w1"].cache_misses == 1

    def test_contest_accounting(self):
        metrics = MetricsCollector()
        job = make_job()
        metrics.contest_opened(0.0, job)
        metrics.bid_received(0.1, job.job_id, "w1", 5.0)
        metrics.contest_closed(1.0, job, "w1", 1.0, "timeout")
        assert metrics.contests_opened == 1
        assert metrics.contests_closed_timeout == 1
        assert metrics.contest_seconds == pytest.approx(1.0)
        assert metrics.workers["w1"].bids_submitted == 1

    def test_contest_outcome_validated(self):
        metrics = MetricsCollector()
        with pytest.raises(ValueError):
            metrics.contest_closed(1.0, make_job(), "w", 1.0, "weird")

    def test_offer_accounting(self):
        metrics = MetricsCollector()
        job = make_job()
        metrics.offer_made(0.0, job, "w1")
        metrics.offer_rejected(0.1, job, "w1")
        metrics.offer_made(0.2, job, "w2")
        metrics.offer_accepted(0.3, job, "w2")
        assert metrics.offers_made == 2
        assert metrics.rejections_seen == 1
        assert metrics.workers["w2"].offers_accepted == 1


class TestReport:
    def make_result(self, **overrides):
        base = dict(
            scheduler="bidding",
            workload="80%_large",
            profile="all-equal",
            seed=1,
            iteration=0,
            makespan_s=100.0,
            cache_misses=10,
            cache_hits=5,
            data_load_mb=500.0,
            jobs_completed=120,
        )
        base.update(overrides)
        return RunResult(**base)

    def test_aggregate_means(self):
        rows = [
            self.make_result(iteration=0, makespan_s=100.0, cache_misses=10),
            self.make_result(iteration=1, makespan_s=200.0, cache_misses=20),
        ]
        agg = aggregate(rows)
        assert agg.mean_makespan_s == pytest.approx(150.0)
        assert agg.mean_cache_misses == pytest.approx(15.0)
        assert agg.runs == 2

    def test_aggregate_rejects_mixed_cells(self):
        with pytest.raises(ValueError):
            aggregate([self.make_result(), self.make_result(scheduler="baseline")])

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_speedup_and_percent_change(self):
        assert speedup(200.0, 100.0) == pytest.approx(2.0)
        assert percent_change(200.0, 100.0) == pytest.approx(50.0)
        assert percent_change(100.0, 150.0) == pytest.approx(-50.0)

    def test_speedup_validates(self):
        with pytest.raises(ValueError):
            speedup(100.0, 0.0)
        with pytest.raises(ValueError):
            percent_change(0.0, 10.0)

    def test_mean_validates(self):
        with pytest.raises(ValueError):
            mean([])
        assert mean([1.0, 3.0]) == 2.0

    def test_result_validation(self):
        with pytest.raises(ValueError):
            self.make_result(makespan_s=-1.0)
        with pytest.raises(ValueError):
            self.make_result(cache_misses=-1)
        with pytest.raises(ValueError):
            self.make_result(data_load_mb=-0.5)

    def test_format_table_aligns(self):
        table = format_table(["name", "value"], [["a", "1"], ["longer", "22"]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
