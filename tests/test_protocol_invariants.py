"""Trace-level protocol invariants across full runs.

These tests assert properties stated or implied by the paper's protocol
descriptions, checked on real traced runs rather than in isolation.
"""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import make_scheduler
from repro.workload.generators import job_config_by_name
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def traced_config(seed=0):
    return EngineConfig(
        seed=seed,
        noise_kind="lognormal",
        noise_params={"sigma": 0.25},
        topology=TopologyConfig(),
        trace=True,
    )


def run_traced(scheduler_name, workload="80%_small", seed=3, **scheduler_kwargs):
    _corpus, stream = job_config_by_name(workload).build(seed=seed)
    runtime = WorkflowRuntime(
        profile=make_profile(*[make_spec(f"w{i}") for i in range(1, 6)]),
        stream=stream,
        scheduler=make_scheduler(scheduler_name, **scheduler_kwargs),
        config=traced_config(seed),
    )
    runtime.run()
    return runtime


class TestBiddingProtocolInvariants:
    @pytest.fixture(scope="class")
    def runtime(self):
        return run_traced("bidding")

    def test_every_job_announced_before_assignment(self, runtime):
        trace = runtime.metrics.trace
        for event in trace.of_kind("assigned"):
            announced = trace.first("announced", event.job_id)
            assert announced is not None
            assert announced.time <= event.time

    def test_contest_duration_bounded_by_window(self, runtime):
        """biddingFinished: every contest closes within the 1 s window
        (plus one delivery of slack for the closing race)."""
        trace = runtime.metrics.trace
        for closed in trace.of_kind("contest_closed"):
            opened = trace.first("announced", closed.job_id)
            assert closed.time - opened.time <= 1.0 + 0.25

    def test_winner_had_lowest_counted_bid(self, runtime):
        """getPreferredWorker returns the argmin of bids received before
        the close."""
        trace = runtime.metrics.trace
        for closed in trace.of_kind("contest_closed"):
            if closed.detail == "fallback":
                continue
            close_time = closed.time
            bids = [
                event
                for event in trace.of_kind("bid")
                if event.job_id == closed.job_id and event.time <= close_time
            ]
            assert bids, f"no bids for closed contest {closed.job_id}"
            best = min(bids, key=lambda event: (event.detail, event.worker))
            assert closed.worker == best.worker

    def test_assignment_matches_contest_winner(self, runtime):
        trace = runtime.metrics.trace
        for closed in trace.of_kind("contest_closed"):
            assigned = trace.first("assigned", closed.job_id)
            assert assigned is not None
            assert assigned.worker == closed.worker

    def test_one_contest_per_job(self, runtime):
        trace = runtime.metrics.trace
        announced = [event.job_id for event in trace.of_kind("announced")]
        assert len(announced) == len(set(announced))


class TestBaselineProtocolInvariants:
    @pytest.fixture(scope="class")
    def runtime(self):
        return run_traced("baseline")

    def test_no_job_offered_to_same_worker_three_times(self, runtime):
        """First offer may be declined, the second must be accepted; a
        third offer to the same worker would mean the second-attempt
        rule failed."""
        trace = runtime.metrics.trace
        counts: dict[tuple[str, str], int] = {}
        for event in trace.of_kind("offered"):
            key = (event.job_id, event.worker)
            counts[key] = counts.get(key, 0) + 1
        assert max(counts.values()) <= 2

    def test_rejected_jobs_eventually_complete(self, runtime):
        trace = runtime.metrics.trace
        for event in trace.of_kind("rejected"):
            assert trace.first("completed", event.job_id) is not None

    def test_acceptance_implies_execution_on_acceptor(self, runtime):
        trace = runtime.metrics.trace
        for accepted in trace.of_kind("accepted"):
            started = trace.first("started", accepted.job_id)
            assert started is not None
            assert started.worker == accepted.worker

    def test_every_job_started_exactly_once(self, runtime):
        trace = runtime.metrics.trace
        started = [event.job_id for event in trace.of_kind("started")]
        assert len(started) == len(set(started)) == 120


class TestCommittedWorkloadReflection:
    def test_busy_workers_bid_higher(self):
        """Deterministic two-worker scenario: the second identical job's
        winning bid must exceed the first's, because the winner of job 1
        now carries committed workload (Listing 2 line 2)."""
        profile = make_profile(make_spec("w1"), make_spec("w2"))
        stream = JobStream(
            arrivals=[
                JobArrival(
                    at=float(i) * 0.1,
                    job=Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=200.0),
                )
                for i in range(3)
            ]
        )
        runtime = WorkflowRuntime(
            profile=profile,
            stream=stream,
            scheduler=make_scheduler("bidding", bid_compute_s=0.0),
            config=EngineConfig(
                seed=1,
                noise_kind="none",
                noise_params={},
                topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
                trace=True,
            ),
        )
        runtime.run()
        trace = runtime.metrics.trace
        # Jobs 1 and 2 go to the two idle-at-first workers; job 3's bids
        # must both include committed workload and exceed job 1's bids.
        job0_bids = [e.detail for e in trace.of_kind("bid") if e.job_id == "j0"]
        job2_bids = [e.detail for e in trace.of_kind("bid") if e.job_id == "j2"]
        assert min(job2_bids) > min(job0_bids)
