"""Unit tests for worker specs, profiles and the simulated machine."""

import numpy as np
import pytest

from repro.cluster.machine import Machine
from repro.cluster.profiles import (
    FAST_FACTOR,
    PROFILE_BUILDERS,
    SLOW_FACTOR,
    WORKER_COUNT,
    all_equal,
    fast_slow,
    one_fast,
    one_slow,
    profile_by_name,
)
from repro.cluster.worker_spec import WorkerSpec
from repro.net.noise import NoNoise, UniformNoise
from repro.sim import Simulator


class TestWorkerSpec:
    def test_nominal_times(self):
        spec = WorkerSpec("w", network_mbps=10.0, rw_mbps=50.0, link_latency=0.5)
        assert spec.nominal_download_time(100.0) == pytest.approx(10.5)
        assert spec.nominal_processing_time(100.0) == pytest.approx(2.0)

    def test_processing_includes_fixed_compute(self):
        spec = WorkerSpec("w", network_mbps=10.0, rw_mbps=50.0, cpu_factor=2.0)
        assert spec.nominal_processing_time(0.0, base_compute_s=4.0) == pytest.approx(2.0)

    def test_scaled(self):
        spec = WorkerSpec("w", network_mbps=10.0, rw_mbps=50.0)
        fast = spec.scaled(4.0, name="fast")
        assert fast.network_mbps == 40.0
        assert fast.rw_mbps == 200.0
        assert fast.cpu_factor == 4.0
        assert fast.name == "fast"
        # Original untouched (frozen dataclass semantics).
        assert spec.network_mbps == 10.0

    def test_scaled_invalid_factor(self):
        spec = WorkerSpec("w", network_mbps=10.0, rw_mbps=50.0)
        with pytest.raises(ValueError):
            spec.scaled(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"network_mbps": 0.0},
            {"rw_mbps": -1.0},
            {"cpu_factor": 0.0},
            {"cache_capacity_mb": 0.0},
            {"link_latency": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(name="w", network_mbps=10.0, rw_mbps=50.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            WorkerSpec(**base)


class TestProfiles:
    @pytest.mark.parametrize("name", sorted(PROFILE_BUILDERS))
    def test_all_profiles_have_five_workers(self, name):
        profile = profile_by_name(name)
        assert len(profile) == WORKER_COUNT
        assert len({spec.name for spec in profile}) == WORKER_COUNT

    def test_all_equal_spread_is_small(self):
        speeds = [spec.network_mbps for spec in all_equal()]
        assert max(speeds) / min(speeds) < 1.15

    def test_one_fast_has_exactly_one_fast(self):
        profile = one_fast()
        speeds = sorted(spec.network_mbps for spec in profile)
        assert speeds[-1] == pytest.approx(speeds[0] * FAST_FACTOR)
        assert speeds[0] == speeds[-2]  # the other four equal

    def test_one_slow_has_exactly_one_slow(self):
        profile = one_slow()
        speeds = sorted(spec.network_mbps for spec in profile)
        assert speeds[0] == pytest.approx(speeds[-1] * SLOW_FACTOR)
        assert speeds[1] == speeds[-1]

    def test_fast_slow_has_both(self):
        profile = fast_slow()
        speeds = sorted(spec.network_mbps for spec in profile)
        assert speeds[-1] / speeds[0] == pytest.approx(FAST_FACTOR / SLOW_FACTOR)
        assert speeds[1] == speeds[2] == speeds[3]

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError, match="valid:"):
            profile_by_name("mystery")


class TestMachine:
    @pytest.fixture
    def sim(self):
        return Simulator()

    def make_machine(self, sim, **kwargs):
        spec = WorkerSpec("w", network_mbps=10.0, rw_mbps=50.0, link_latency=0.0)
        return Machine(sim, spec, rng=np.random.default_rng(0), **kwargs)

    def test_download_duration(self, sim):
        machine = self.make_machine(sim)

        def proc(sim, machine):
            elapsed = yield from machine.download(100.0)
            return elapsed

        assert sim.run(sim.process(proc(sim, machine))) == pytest.approx(10.0)

    def test_process_duration(self, sim):
        machine = self.make_machine(sim)

        def proc(sim, machine):
            elapsed = yield from machine.process(100.0, base_compute_s=1.0)
            return elapsed

        assert sim.run(sim.process(proc(sim, machine))) == pytest.approx(3.0)

    def test_speed_samples_recorded(self, sim):
        machine = self.make_machine(sim)

        def proc(sim, machine):
            yield from machine.download(100.0)
            yield from machine.process(100.0)

        sim.run(sim.process(proc(sim, machine)))
        assert machine.measured_network_mbps == pytest.approx(10.0)
        assert machine.measured_rw_mbps == pytest.approx(50.0)

    def test_measured_speeds_seeded_with_nominal(self, sim):
        machine = self.make_machine(sim)
        assert machine.measured_network_mbps == pytest.approx(10.0)
        assert machine.measured_rw_mbps == pytest.approx(50.0)

    def test_noise_shifts_measured_average(self, sim):
        machine = self.make_machine(sim, rw_noise=UniformNoise(0.5))

        def proc(sim, machine):
            for _ in range(50):
                yield from machine.process(10.0)

        sim.run(sim.process(proc(sim, machine)))
        # Historic average converges near nominal but individual samples vary.
        samples = machine._rw_samples[1:]
        assert np.std(samples) > 0.0

    def test_busy_seconds_accumulate(self, sim):
        machine = self.make_machine(sim)

        def proc(sim, machine):
            yield from machine.download(50.0)
            yield from machine.process(50.0)

        sim.run(sim.process(proc(sim, machine)))
        assert machine.busy_seconds == pytest.approx(5.0 + 1.0)

    def test_invalid_sample_rejected(self, sim):
        machine = self.make_machine(sim)
        with pytest.raises(ValueError):
            machine.record_network_sample(0.0)
        with pytest.raises(ValueError):
            machine.record_rw_sample(-5.0)

    def test_process_validates_args(self, sim):
        machine = self.make_machine(sim)
        with pytest.raises(ValueError):
            list(machine.process(-1.0))
        with pytest.raises(ValueError):
            list(machine.process(1.0, base_compute_s=-1.0))
