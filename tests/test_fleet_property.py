"""Property tests: the struct-of-arrays fleet mirrors never drift.

The fast path (:mod:`repro.fleet`) keeps numpy planes *alongside* the
authoritative per-object state, maintained incrementally at the
mutation seams.  These tests drive randomized seam sequences -- joins,
retires, crashes, count reports, cache churn -- against both the mirror
and a plain-Python reference model, and require exact agreement: a
mirror that drifts by one bit would silently change scheduling
decisions while every example-based test still passes.

The final test closes the loop end-to-end: a fault-injected workflow
run with the :mod:`repro.check` invariant monitors live, after which
the fleet planes must equal the worker nodes' own state.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_profile, make_spec
from repro.data.cache import WorkerCache
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.fleet import FleetState, LoadTable
from repro.fleet.soa import _CacheObserver
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import make_scheduler
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER

WORKERS = [f"w{i}" for i in range(6)]
REPOS = [f"r{i}" for i in range(8)]

worker_st = st.sampled_from(WORKERS)
repo_st = st.sampled_from(REPOS)

fleet_op_st = st.one_of(
    st.tuples(st.just("join"), worker_st),
    st.tuples(st.just("retire"), worker_st),
    st.tuples(st.just("fail"), worker_st),
    st.tuples(st.just("set_alive"), worker_st, st.booleans()),
    st.tuples(
        st.just("report"),
        worker_st,
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
    ),
    st.tuples(st.just("cache_set"), worker_st, repo_st, st.booleans()),
    st.tuples(st.just("cache_clear"), worker_st),
)


class _Reference:
    """The plain-Python model the mirror must track exactly."""

    def __init__(self):
        self.alive = {}
        self.active = {}
        self.outstanding = {}
        self.queued = {}
        self.cache = {}

    def ensure(self, name):
        self.alive.setdefault(name, False)
        self.active.setdefault(name, False)
        self.outstanding.setdefault(name, 0)
        self.queued.setdefault(name, 0)
        self.cache.setdefault(name, set())

    def busy_count(self):
        return sum(
            1 for n in self.alive if self.alive[n] and self.outstanding[n] > 0
        )

    def active_busy_count(self):
        return sum(
            1 for n in self.active if self.active[n] and self.outstanding[n] > 0
        )


@given(st.lists(fleet_op_st, max_size=200))
@settings(max_examples=100, deadline=None)
def test_fleet_state_mirror_matches_reference(ops):
    fleet = FleetState()
    ref = _Reference()
    for op in ops:
        kind, name = op[0], op[1]
        slot = fleet.ensure_worker(name)
        ref.ensure(name)
        if kind == "join":
            fleet.on_join(name)
            ref.active[name] = True
        elif kind == "retire":
            fleet.on_retire(name)
            ref.active[name] = False
        elif kind == "fail":
            fleet.on_fail(name)
            ref.active[name] = False
        elif kind == "set_alive":
            fleet.set_alive(slot, op[2])
            ref.alive[name] = op[2]
        elif kind == "report":
            fleet.report(slot, op[2], op[3])
            ref.outstanding[name] = op[2]
            ref.queued[name] = op[3]
        elif kind == "cache_set":
            fleet.cache.set(slot, op[2], op[3])
            (ref.cache[name].add if op[3] else ref.cache[name].discard)(op[2])
        elif kind == "cache_clear":
            fleet.cache.clear_row(slot)
            ref.cache[name].clear()
    # Exact plane-by-plane agreement, then the derived counts.
    for name in ref.alive:
        slot = fleet.slot_of(name)
        assert bool(fleet.alive[slot]) == ref.alive[name]
        assert bool(fleet.active[slot]) == ref.active[name]
        assert int(fleet.outstanding[slot]) == ref.outstanding[name]
        assert int(fleet.queued[slot]) == ref.queued[name]
        assert fleet.cache.row_contents(slot) == ref.cache[name]
    assert fleet.busy_count() == ref.busy_count()
    assert fleet.active_busy_count() == ref.active_busy_count()
    if ref.alive:
        slots = np.array([fleet.slot_of(n) for n in ref.alive], dtype=np.intp)
        assert list(fleet.queued_values(slots)) == [
            ref.queued[n] for n in ref.alive
        ]
        assert list(fleet.busy_values(slots)) == [
            int(ref.alive[n] and ref.outstanding[n] > 0) for n in ref.alive
        ]


cache_op_st = st.one_of(
    st.tuples(st.just("insert"), repo_st, st.floats(min_value=1.0, max_value=40.0)),
    st.tuples(st.just("lookup"), repo_st),
    st.tuples(st.just("clear")),
    st.tuples(
        st.just("preload"),
        st.dictionaries(repo_st, st.floats(min_value=1.0, max_value=40.0), max_size=4),
    ),
)


@given(
    st.floats(min_value=20.0, max_value=120.0),
    st.lists(cache_op_st, max_size=100),
)
@settings(max_examples=100, deadline=None)
def test_cache_observer_tracks_worker_cache(capacity_mb, ops):
    """Cache churn through the observer seam: inserts, LRU eviction
    cascades, preloads and clears on a capacity-bounded cache keep the
    bit-matrix row equal to the cache's own membership after every op."""
    fleet = FleetState()
    slot = fleet.ensure_worker("w0")
    cache = WorkerCache(capacity_mb=capacity_mb)
    cache.observer = _CacheObserver(fleet, slot)
    for op in ops:
        if op[0] == "insert":
            cache.insert(op[1], op[2])
        elif op[0] == "lookup":
            cache.lookup(op[1])
        elif op[0] == "clear":
            cache.clear()
        elif op[0] == "preload":
            cache.preload(op[1])
        assert fleet.cache.row_contents(slot) == set(cache.contents())


load_op_st = st.one_of(
    st.tuples(st.just("ensure"), worker_st, st.floats(0.0, 100.0)),
    st.tuples(st.just("add"), worker_st, st.floats(0.1, 10.0)),
    st.tuples(st.just("set"), worker_st, st.floats(0.0, 100.0)),
    st.tuples(st.just("pop"), worker_st),
)


@given(st.lists(load_op_st, max_size=150))
@settings(max_examples=100, deadline=None)
def test_load_table_matches_dict_scans(ops):
    """LoadTable vs the dict it mirrors: after every mutation the rank
    argmin/argmax must equal ``min``/``max`` over the dict with the
    (value, name) tuple key -- the exact scans the planners replaced."""
    table = LoadTable()
    ref = {}
    for op in ops:
        kind, name = op[0], op[1]
        if kind == "ensure":
            if name not in ref:
                ref[name] = op[2]
            table.ensure(name, op[2])
        elif kind == "add":
            if name in ref:
                ref[name] += op[2]
                table.add(name, op[2])
        elif kind == "set":
            # ``set`` targets existing entries (consumers ensure first).
            if name in ref:
                ref[name] = op[2]
                table.set(name, op[2])
        elif kind == "pop":
            ref.pop(name, None)
            table.pop(name)
        assert len(table) == len(ref)
        for key, value in ref.items():
            assert table.get(key) == value
        if ref:
            assert table.argmin_name() == min(ref, key=lambda n: (ref[n], n))
            assert table.argmax_name() == max(ref, key=lambda n: (ref[n], n))
            assert table.max_value() == max(ref.values())


def test_fleet_mirror_consistent_after_faulty_run():
    """End-to-end: a monitored, fault-injected run (worker crash +
    restart under fault tolerance) leaves the mirror equal to every
    node's own state -- counts, liveness, link and cache contents."""
    stream = JobStream(
        arrivals=[
            JobArrival(
                at=float(i),
                job=Job(
                    job_id=f"j{i}",
                    task=TASK_ANALYZER,
                    repo_id=f"r{i % 4}",
                    size_mb=40.0,
                ),
            )
            for i in range(10)
        ]
    )
    runtime = WorkflowRuntime(
        profile=make_profile(make_spec("w1"), make_spec("w2"), make_spec("w3")),
        stream=stream,
        scheduler=make_scheduler("bidding"),
        config=EngineConfig(
            seed=3,
            noise_kind="none",
            noise_params={},
            topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
            fault_tolerance=True,
            max_sim_time=2000.0,
            check=True,
        ),
    )
    runtime.sim.timeout(5.0).add_callback(lambda _e: runtime.workers["w2"].kill())
    result = runtime.run()
    assert result.jobs_completed == 10
    fleet = runtime.fleet
    assert fleet is not None
    for name, node in runtime.workers.items():
        slot = fleet.slot_of(name)
        assert bool(fleet.alive[slot]) == node.alive
        assert int(fleet.outstanding[slot]) == node._outstanding_jobs
        assert int(fleet.queued[slot]) == len(node.queue)
        assert fleet.cache.row_contents(slot) == set(node.cache.contents())
        assert bool(fleet.link_busy[slot]) == node.machine.link.busy
    assert set(
        name for name in runtime.master.active_workers
    ) == {name for name in fleet.names if fleet.active[fleet.slot_of(name)]}
