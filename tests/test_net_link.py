"""Unit tests for dedicated download links."""

import numpy as np
import pytest

from repro.net.bandwidth import FairSharePipe
from repro.net.link import Link
from repro.net.noise import NoNoise, UniformNoise
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def run_transfer(sim, link, size_mb):
    def proc(sim, link):
        elapsed = yield sim.process(link.transfer(size_mb))
        return elapsed

    return sim.run(sim.process(proc(sim, link)))


class TestBasics:
    def test_transfer_time_includes_latency(self, sim):
        link = Link(sim, bandwidth_mbps=10.0, latency=0.5)
        elapsed = run_transfer(sim, link, 100.0)
        assert elapsed == pytest.approx(10.5)

    def test_zero_size_costs_only_latency(self, sim):
        link = Link(sim, bandwidth_mbps=10.0, latency=0.5)
        assert run_transfer(sim, link, 0.0) == pytest.approx(0.5)

    def test_nominal_transfer_time(self, sim):
        link = Link(sim, bandwidth_mbps=20.0, latency=1.0)
        assert link.nominal_transfer_time(100.0) == pytest.approx(6.0)

    def test_counters_accumulate(self, sim):
        link = Link(sim, bandwidth_mbps=10.0)

        def proc(sim, link):
            yield sim.process(link.transfer(30.0))
            yield sim.process(link.transfer(20.0))

        sim.run(sim.process(proc(sim, link)))
        assert link.total_mb == pytest.approx(50.0)
        assert link.transfer_count == 2

    def test_negative_size_rejected(self, sim):
        link = Link(sim, bandwidth_mbps=10.0)
        with pytest.raises(ValueError):
            list(link.transfer(-5.0))

    def test_invalid_construction(self, sim):
        with pytest.raises(ValueError):
            Link(sim, bandwidth_mbps=0.0)
        with pytest.raises(ValueError):
            Link(sim, bandwidth_mbps=1.0, latency=-1.0)


class TestSerialisation:
    def test_transfers_are_fifo_serialised(self, sim):
        link = Link(sim, bandwidth_mbps=10.0)
        finishes = []

        def downloader(sim, link, size):
            yield sim.process(link.transfer(size))
            finishes.append(sim.now)

        sim.process(downloader(sim, link, 100.0))
        sim.process(downloader(sim, link, 100.0))
        sim.run()
        # Serialised: 10 s then 20 s, not both at 20 s.
        assert finishes == [pytest.approx(10.0), pytest.approx(20.0)]


class TestNoise:
    def test_noise_perturbs_duration(self, sim):
        rng = np.random.default_rng(7)
        link = Link(sim, bandwidth_mbps=10.0, noise=UniformNoise(0.5), rng=rng)
        elapsed = run_transfer(sim, link, 100.0)
        assert elapsed != pytest.approx(10.0)
        assert 100.0 / 15.0 <= elapsed <= 100.0 / 5.0

    def test_realised_speed_recorded(self, sim):
        link = Link(sim, bandwidth_mbps=10.0, latency=0.0, noise=NoNoise())
        run_transfer(sim, link, 50.0)
        assert link.last_realised_mbps == pytest.approx(10.0)

    def test_realised_speed_includes_latency_drag(self, sim):
        link = Link(sim, bandwidth_mbps=10.0, latency=5.0)
        run_transfer(sim, link, 50.0)
        # 50 MB in 10 s -> 5 MB/s effective.
        assert link.last_realised_mbps == pytest.approx(5.0)


class TestUpstream:
    def test_shared_origin_throttles(self, sim):
        origin = FairSharePipe(sim, capacity_mbps=10.0)
        link_a = Link(sim, bandwidth_mbps=100.0, upstream=origin)
        link_b = Link(sim, bandwidth_mbps=100.0, upstream=origin)
        finishes = []

        def downloader(sim, link):
            yield sim.process(link.transfer(100.0))
            finishes.append(sim.now)

        sim.process(downloader(sim, link_a))
        sim.process(downloader(sim, link_b))
        sim.run()
        # Local pipes allow 1 s each, but the shared 10 MB/s origin
        # forces both to ~20 s.
        assert all(f == pytest.approx(20.0, rel=0.05) for f in finishes)

    def test_fast_origin_does_not_slow_link(self, sim):
        origin = FairSharePipe(sim, capacity_mbps=1000.0)
        link = Link(sim, bandwidth_mbps=10.0, upstream=origin)
        elapsed = run_transfer(sim, link, 100.0)
        assert elapsed == pytest.approx(10.0, rel=0.01)
