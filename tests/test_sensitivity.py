"""Tests for the scale/parameter sensitivity sweeps (future-work S1-S4)."""

import pytest

from repro.experiments.sensitivity import (
    SweepPoint,
    render,
    sweep_arrival_rate,
    sweep_heterogeneity,
    sweep_job_count,
    sweep_worker_count,
)


class TestSweepPoint:
    def test_speedup(self):
        point = SweepPoint("x", bidding_time_s=50.0, baseline_time_s=100.0,
                           bidding_data_mb=1.0, baseline_data_mb=2.0)
        assert point.speedup == pytest.approx(2.0)


class TestWorkerCountSweep:
    def test_more_workers_shorter_makespans(self):
        points = sweep_worker_count(counts=(5, 15))
        assert points[1].bidding_time_s < points[0].bidding_time_s
        assert points[1].baseline_time_s < points[0].baseline_time_s

    def test_bidding_wins_at_every_scale(self):
        for point in sweep_worker_count(counts=(5, 15)):
            assert point.speedup > 1.0, point.setting


class TestJobCountSweep:
    def test_more_jobs_longer_makespans(self):
        points = sweep_job_count(counts=(60, 240))
        assert points[1].bidding_time_s > points[0].bidding_time_s

    def test_advantage_persists_with_scale(self):
        points = sweep_job_count(counts=(60, 240))
        assert all(point.speedup > 1.0 for point in points)


class TestHeterogeneitySweep:
    def test_larger_spread_larger_advantage(self):
        points = sweep_heterogeneity(factors=(1.0, 8.0))
        assert points[1].speedup > points[0].speedup


class TestArrivalRateSweep:
    def test_sparse_arrivals_erode_advantage(self):
        points = sweep_arrival_rate(interarrivals=(0.0, 10.0))
        burst, sparse = points
        assert burst.speedup > sparse.speedup

    def test_render_includes_all_settings(self):
        points = sweep_arrival_rate(interarrivals=(0.0, 4.0))
        text = render("S4", points)
        assert "burst" in text and "gap=4s" in text
