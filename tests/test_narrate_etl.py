"""Tests for trace narration and the ETL example's pipeline shape."""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.metrics.analysis import narrate
from repro.metrics.trace import Trace
from repro.schedulers.registry import make_scheduler
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


class TestNarrate:
    def build_trace(self):
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        trace.record(0.1, "announced", "j1")
        trace.record(0.2, "bid", "j1", "w1", 5.25)
        trace.record(1.0, "contest_closed", "j1", "w1", "full")
        trace.record(1.0, "assigned", "j1", "w1")
        trace.record(1.1, "started", "j1", "w1")
        trace.record(5.0, "completed", "j1", "w1")
        return trace

    def test_full_story(self):
        text = narrate(self.build_trace())
        assert "bidding contest opened for j1" in text
        assert "w1 bid 5.25s on j1" in text
        assert "w1 completed j1" in text

    def test_job_filter(self):
        trace = self.build_trace()
        trace.record(6.0, "submitted", "j2")
        text = narrate(trace, job_id="j1")
        assert "j2" not in text

    def test_limit_notice(self):
        trace = self.build_trace()
        text = narrate(trace, limit=2)
        assert "more events" in text

    def test_timestamps_formatted(self):
        text = narrate(self.build_trace())
        assert text.startswith("[     0.000s]")

    def test_narrate_real_run(self):
        stream = JobStream(
            arrivals=[
                JobArrival(
                    at=0.0,
                    job=Job(job_id="only", task=TASK_ANALYZER, repo_id="r", size_mb=10.0),
                )
            ]
        )
        runtime = WorkflowRuntime(
            profile=make_profile(make_spec("w1"), make_spec("w2")),
            stream=stream,
            scheduler=make_scheduler("bidding"),
            config=EngineConfig(seed=0, trace=True),
        )
        runtime.run()
        story = narrate(runtime.metrics.trace, job_id="only")
        assert "submitted" in story
        assert "completed only" in story


class TestETLExampleShape:
    def test_pipeline_produces_identical_stats_under_all_schedulers(self):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "etl_pipeline", Path(__file__).parent.parent / "examples" / "etl_pipeline.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        shard_sizes, stream = module.build_workload()
        outputs = []
        from repro.cluster.profiles import all_equal

        for scheduler in ("round-robin", "bidding"):
            stats = {}
            runtime = WorkflowRuntime(
                profile=all_equal(),
                stream=stream,
                scheduler=make_scheduler(scheduler),
                pipeline=module.build_pipeline(stats),
                config=EngineConfig(seed=77),
            )
            runtime.run()
            outputs.append(stats)
        # Aggregated MB sums in completion order, which differs per
        # scheduler -- equal up to float summation order.
        assert outputs[0].keys() == outputs[1].keys()
        for pass_index in outputs[0]:
            a, b = outputs[0][pass_index], outputs[1][pass_index]
            assert a["shards"] == b["shards"] == module.N_SHARDS
            assert a["mb"] == pytest.approx(b["mb"])
