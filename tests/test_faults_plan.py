"""FaultPlan validation and dict/JSON round-tripping."""

import json

import pytest

from repro.faults import (
    CrashRenewal,
    FaultPlan,
    LinkDegradation,
    MessageLoss,
    NetworkPartition,
    RecoveryConfig,
    WorkerCrash,
)

pytestmark = pytest.mark.faults


class TestScheduleValidation:
    def test_crash_requires_nonnegative_time(self):
        with pytest.raises(ValueError, match="at_s"):
            WorkerCrash(at_s=-1.0)

    def test_crash_restart_delay_must_be_positive(self):
        with pytest.raises(ValueError, match="restart_after_s"):
            WorkerCrash(at_s=1.0, restart_after_s=0.0)

    def test_renewal_requires_positive_mtbf(self):
        with pytest.raises(ValueError, match="mtbf_s"):
            CrashRenewal(mtbf_s=0.0)

    def test_renewal_window_must_be_ordered(self):
        with pytest.raises(ValueError, match="end_s"):
            CrashRenewal(mtbf_s=10.0, start_s=5.0, end_s=5.0)

    def test_degradation_must_do_something(self):
        with pytest.raises(ValueError, match="cut bandwidth or add latency"):
            LinkDegradation(start_s=0.0, end_s=10.0)

    def test_degradation_bandwidth_factor_range(self):
        with pytest.raises(ValueError, match="bandwidth_factor"):
            LinkDegradation(start_s=0.0, end_s=10.0, bandwidth_factor=1.5)
        # Factor 1.0 with extra latency is a pure-latency window: valid.
        LinkDegradation(start_s=0.0, end_s=10.0, extra_latency_s=0.5)

    def test_partition_needs_a_group(self):
        with pytest.raises(ValueError, match="group"):
            NetworkPartition(start_s=0.0, end_s=10.0, group=())

    def test_message_loss_probability_range(self):
        with pytest.raises(ValueError, match="probability"):
            MessageLoss(start_s=0.0, end_s=10.0, probability=1.0)

    def test_recovery_budget_nonnegative(self):
        with pytest.raises(ValueError, match="max_redispatches"):
            RecoveryConfig(max_redispatches=-1)

    def test_recovery_backoff_factor_at_least_one(self):
        with pytest.raises(ValueError, match="backoff_factor"):
            RecoveryConfig(backoff_factor=0.5)


class TestPlanComposition:
    def test_entries_are_type_checked(self):
        with pytest.raises(TypeError, match="crashes"):
            FaultPlan(crashes=(CrashRenewal(mtbf_s=10.0),))

    def test_lists_coerce_to_tuples(self):
        plan = FaultPlan(crashes=[WorkerCrash(at_s=1.0)])
        assert isinstance(plan.crashes, tuple)

    def test_trivial_plan_schedules_nothing(self):
        assert FaultPlan().is_trivial
        assert FaultPlan(recovery=None).is_trivial
        assert not FaultPlan(crashes=(WorkerCrash(at_s=1.0),)).is_trivial

    def test_recovery_must_be_config_or_none(self):
        with pytest.raises(TypeError, match="recovery"):
            FaultPlan(recovery={"max_redispatches": 2})


def full_plan():
    return FaultPlan(
        crashes=(WorkerCrash(at_s=5.0, worker="w1", restart_after_s=10.0),),
        renewals=(CrashRenewal(mtbf_s=100.0, mttr_s=20.0, targets=("w2",)),),
        degradations=(LinkDegradation(start_s=1.0, end_s=9.0, bandwidth_factor=0.5),),
        partitions=(NetworkPartition(start_s=2.0, end_s=4.0, group=("w1",)),),
        message_loss=(MessageLoss(start_s=0.0, end_s=3.0, probability=0.2),),
        recovery=RecoveryConfig(max_redispatches=5, redispatch_timeout_s=60.0),
        restart_keeps_cache=False,
    )


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        plan = full_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_json_round_trip_is_identity(self):
        plan = full_plan()
        assert FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict()))) == plan

    def test_recovery_none_round_trips_as_none(self):
        plan = FaultPlan(crashes=(WorkerCrash(at_s=1.0),), recovery=None)
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.recovery is None
        assert rebuilt == plan

    def test_missing_sections_default_empty(self):
        plan = FaultPlan.from_dict({"crashes": [{"at_s": 3.0}]})
        assert plan.crashes == (WorkerCrash(at_s=3.0),)
        assert plan.renewals == ()
        # Omitted recovery means the default budget, matching FaultPlan().
        assert plan.recovery == RecoveryConfig()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan keys"):
            FaultPlan.from_dict({"crashez": []})
