"""Unit tests for the job model and arrival streams."""

import numpy as np
import pytest

from repro.workload.job import Job, JobArrival, JobStream


def make_job(i=0, repo=None, size=0.0):
    return Job(
        job_id=f"j{i}",
        task="RepositoryAnalyzer",
        repo_id=repo,
        size_mb=size,
        payload=("lib",),
    )


class TestJob:
    def test_data_bound(self):
        assert make_job(repo="r", size=10.0).is_data_bound
        assert not make_job().is_data_bound

    def test_repo_requires_size(self):
        with pytest.raises(ValueError):
            Job(job_id="j", task="t", repo_id="r", size_mb=0.0)

    def test_size_requires_repo(self):
        with pytest.raises(ValueError):
            Job(job_id="j", task="t", repo_id=None, size_mb=5.0)

    def test_required_fields(self):
        with pytest.raises(ValueError):
            Job(job_id="", task="t")
        with pytest.raises(ValueError):
            Job(job_id="j", task="")

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Job(job_id="j", task="t", base_compute_s=-1.0)

    def test_jobs_are_immutable(self):
        job = make_job()
        with pytest.raises(AttributeError):
            job.task = "other"


class TestJobArrival:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            JobArrival(at=-1.0, job=make_job())


class TestJobStream:
    def test_arrivals_sorted(self):
        jobs = [make_job(i) for i in range(3)]
        stream = JobStream(
            arrivals=[
                JobArrival(at=5.0, job=jobs[0]),
                JobArrival(at=1.0, job=jobs[1]),
                JobArrival(at=3.0, job=jobs[2]),
            ]
        )
        assert [a.at for a in stream] == [1.0, 3.0, 5.0]

    def test_burst_all_at_zero(self):
        stream = JobStream.burst([make_job(i) for i in range(5)])
        assert all(a.at == 0.0 for a in stream)
        assert len(stream) == 5

    def test_poisson_monotone_arrivals(self):
        stream = JobStream.poisson(
            [make_job(i) for i in range(50)], 2.0, np.random.default_rng(0)
        )
        times = [a.at for a in stream]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_poisson_mean_gap(self):
        stream = JobStream.poisson(
            [make_job(i) for i in range(2000)], 2.0, np.random.default_rng(1)
        )
        times = [a.at for a in stream]
        gaps = np.diff(times)
        assert abs(np.mean(gaps) - 2.0) < 0.15

    def test_poisson_zero_interarrival_is_burst(self):
        stream = JobStream.poisson(
            [make_job(i) for i in range(5)], 0.0, np.random.default_rng(0)
        )
        assert all(a.at == 0.0 for a in stream)

    def test_poisson_preserves_job_order(self):
        jobs = [make_job(i) for i in range(10)]
        stream = JobStream.poisson(jobs, 1.0, np.random.default_rng(2))
        assert stream.jobs == jobs

    def test_total_and_distinct_data(self):
        jobs = [
            make_job(0, repo="a", size=10.0),
            make_job(1, repo="a", size=10.0),
            make_job(2, repo="b", size=5.0),
        ]
        stream = JobStream.burst(jobs)
        assert stream.total_data_mb == pytest.approx(25.0)
        assert stream.distinct_repo_mb() == pytest.approx(15.0)

    def test_negative_interarrival_rejected(self):
        with pytest.raises(ValueError):
            JobStream.poisson([make_job()], -1.0, np.random.default_rng(0))
