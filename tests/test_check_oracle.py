"""The reference oracle (``repro.check.oracle``): differential testing.

The oracle re-derives the headline accounting from the raw trace with
one linear scan per metric -- no shared code with the engine's
collector.  Every scheduler's summary must agree with it, healthy and
faulted; a tampered summary must be flagged with the exact fields that
disagree.
"""

import dataclasses

import pytest

from conftest import make_profile, make_spec
from repro.check import OracleMismatch, replay_trace, verify_run
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.faults import FaultPlan, RecoveryConfig, WorkerCrash
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def stream_of(n=12, size=35.0, repos=5):
    return JobStream(
        arrivals=[
            JobArrival(
                at=float(i) * 0.3,
                job=Job(
                    job_id=f"j{i}",
                    task=TASK_ANALYZER,
                    repo_id=f"r{i % repos}",
                    size_mb=size,
                ),
            )
            for i in range(n)
        ]
    )


def run_with_trace(scheduler, faults=None, allow_partial=False, seed=5):
    runtime = WorkflowRuntime(
        profile=make_profile(make_spec("w1"), make_spec("w2"), make_spec("w3")),
        stream=stream_of(),
        scheduler=make_scheduler(scheduler),
        config=EngineConfig(
            seed=seed,
            noise_kind="none",
            noise_params={},
            topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
            trace=True,
            max_sim_time=5000.0,
        ),
        faults=faults,
        allow_partial=allow_partial,
    )
    return runtime.run(), runtime.metrics


class TestDifferential:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_every_scheduler_agrees_with_the_oracle(self, scheduler):
        result, metrics = run_with_trace(scheduler)
        oracle = verify_run(result, metrics)
        assert oracle.jobs_completed == 12

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_faulted_runs_agree_too(self, scheduler):
        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=2.0, worker="w2", restart_after_s=5.0),),
            recovery=RecoveryConfig(max_redispatches=5, backoff_base_s=0.1),
        )
        result, metrics = run_with_trace(scheduler, faults=plan)
        verify_run(result, metrics)

    def test_partial_runs_report_failed_jobs_identically(self):
        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=2.0, worker="w1"),),
            recovery=RecoveryConfig(max_redispatches=0, backoff_base_s=0.1),
        )
        result, metrics = run_with_trace("bidding", faults=plan, allow_partial=True)
        oracle = verify_run(result, metrics)
        assert oracle.failed_jobs == tuple(result.failed_jobs)


class TestTampering:
    def test_tampered_counter_is_flagged(self):
        result, metrics = run_with_trace("bidding")
        bad = dataclasses.replace(result, cache_misses=result.cache_misses + 1)
        with pytest.raises(OracleMismatch) as caught:
            verify_run(bad, metrics)
        assert any(field == "cache_misses" for field, _, _ in caught.value.mismatches)

    def test_tampered_float_is_flagged(self):
        result, metrics = run_with_trace("bidding")
        bad = dataclasses.replace(result, data_load_mb=result.data_load_mb * 1.01)
        with pytest.raises(OracleMismatch) as caught:
            verify_run(bad, metrics)
        assert any(field == "data_load_mb" for field, _, _ in caught.value.mismatches)

    def test_last_ulp_reassociation_is_tolerated(self):
        # The engine groups per-worker sums; the oracle scans in time
        # order.  Identical values summed in a different order may
        # differ by an ulp -- that must NOT be a mismatch.
        result, metrics = run_with_trace("bidding")
        nudged = dataclasses.replace(
            result,
            data_load_mb=result.data_load_mb * (1.0 + 1e-12),
        )
        verify_run(nudged, metrics)

    def test_multiple_mismatches_are_all_listed(self):
        result, metrics = run_with_trace("bidding")
        bad = dataclasses.replace(
            result,
            cache_hits=result.cache_hits + 1,
            jobs_completed=result.jobs_completed + 1,
        )
        with pytest.raises(OracleMismatch) as caught:
            verify_run(bad, metrics)
        fields = {field for field, _, _ in caught.value.mismatches}
        assert {"cache_hits", "jobs_completed"} <= fields


class TestReplay:
    def test_oracle_totals_are_internally_consistent(self):
        result, metrics = run_with_trace("bar")
        oracle = replay_trace(metrics.trace, started_at=metrics.started_at)
        assert oracle.jobs_completed == sum(oracle.per_worker_jobs.values())
        assert oracle.data_load_mb == pytest.approx(
            sum(oracle.per_worker_mb.values())
        )

    def test_disabled_trace_is_rejected(self):
        runtime = WorkflowRuntime(
            profile=make_profile(make_spec("w1"), make_spec("w2")),
            stream=stream_of(4),
            scheduler=make_scheduler("bidding"),
            config=EngineConfig(seed=5, noise_kind="none", noise_params={}, trace=False),
        )
        runtime.run()
        with pytest.raises(ValueError):
            replay_trace(runtime.metrics.trace, started_at=runtime.metrics.started_at)
