"""Unit tests for the speed-noise models."""

import numpy as np
import pytest

from repro.net.noise import (
    LogNormalNoise,
    NoNoise,
    OrnsteinUhlenbeckNoise,
    UniformNoise,
    make_noise,
)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestNoNoise:
    def test_always_one(self, rng):
        model = NoNoise()
        assert all(model.factor(rng, float(t)) == 1.0 for t in range(10))


class TestUniformNoise:
    def test_within_bounds(self, rng):
        model = UniformNoise(amplitude=0.3)
        factors = [model.factor(rng, 0.0) for _ in range(1000)]
        assert all(0.7 <= f <= 1.3 for f in factors)

    def test_mean_close_to_one(self, rng):
        model = UniformNoise(amplitude=0.3)
        factors = [model.factor(rng, 0.0) for _ in range(5000)]
        assert abs(np.mean(factors) - 1.0) < 0.02

    def test_zero_amplitude_is_deterministic(self, rng):
        model = UniformNoise(amplitude=0.0)
        assert model.factor(rng, 0.0) == 1.0

    @pytest.mark.parametrize("amplitude", [-0.1, 1.0, 2.0])
    def test_invalid_amplitude_rejected(self, amplitude):
        with pytest.raises(ValueError):
            UniformNoise(amplitude=amplitude)


class TestLogNormalNoise:
    def test_always_positive(self, rng):
        model = LogNormalNoise(sigma=1.0)
        assert all(model.factor(rng, 0.0) > 0 for _ in range(1000))

    def test_mean_close_to_one(self, rng):
        model = LogNormalNoise(sigma=0.25)
        factors = [model.factor(rng, 0.0) for _ in range(20000)]
        assert abs(np.mean(factors) - 1.0) < 0.02

    def test_zero_sigma_deterministic(self, rng):
        model = LogNormalNoise(sigma=0.0)
        assert model.factor(rng, 0.0) == 1.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LogNormalNoise(sigma=-0.5)

    def test_larger_sigma_larger_spread(self, rng):
        narrow = [LogNormalNoise(0.1).factor(rng, 0.0) for _ in range(2000)]
        wide = [LogNormalNoise(0.8).factor(rng, 0.0) for _ in range(2000)]
        assert np.std(wide) > np.std(narrow)


class TestOrnsteinUhlenbeckNoise:
    def test_time_correlation(self, rng):
        """Samples close in time correlate more than distant samples."""
        model = OrnsteinUhlenbeckNoise(sigma=0.5, tau=100.0)
        first = model.factor(rng, 0.0)
        nearby = model.factor(rng, 0.001)
        assert abs(np.log(nearby) - np.log(first)) < 0.1

    def test_mean_reverts_over_long_gaps(self, rng):
        """After many correlation times, samples decorrelate."""
        model = OrnsteinUhlenbeckNoise(sigma=0.5, tau=1.0)
        draws = [model.factor(rng, t * 100.0) for t in range(2000)]
        # Long-gap samples follow the stationary law with mean ~1.
        assert abs(np.mean(draws) - 1.0) < 0.1

    def test_always_positive(self, rng):
        model = OrnsteinUhlenbeckNoise(sigma=1.0, tau=10.0)
        assert all(model.factor(rng, float(t)) > 0 for t in range(500))

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            OrnsteinUhlenbeckNoise(sigma=-1.0, tau=1.0)
        with pytest.raises(ValueError):
            OrnsteinUhlenbeckNoise(sigma=1.0, tau=0.0)

    def test_backwards_time_tolerated(self, rng):
        model = OrnsteinUhlenbeckNoise(sigma=0.3, tau=5.0)
        model.factor(rng, 10.0)
        assert model.factor(rng, 5.0) > 0  # clamped dt, no crash


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("none", NoNoise),
            ("uniform", UniformNoise),
            ("lognormal", LogNormalNoise),
            ("ou", OrnsteinUhlenbeckNoise),
        ],
    )
    def test_known_kinds(self, kind, cls):
        assert isinstance(make_noise(kind), cls)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown noise kind"):
            make_noise("bogus")

    def test_params_forwarded(self):
        model = make_noise("lognormal", sigma=0.7)
        assert model.sigma == 0.7
