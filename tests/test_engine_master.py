"""Unit tests for the master node: intake, expansion, termination."""

import numpy as np
import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime, single_task_pipeline
from repro.net.topology import TopologyConfig
from repro.schedulers.base import MasterPolicy, PassiveWorkerPolicy, SchedulerPolicy
from repro.schedulers.registry import make_scheduler
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import KIND_ANALYSIS, TASK_ANALYZER
from repro.workload.pipeline import Pipeline, Task


def analysis_job(job_id, repo=None, size=0.0, at=0.0):
    return JobArrival(
        at=at,
        job=Job(
            job_id=job_id,
            task=TASK_ANALYZER,
            repo_id=repo,
            size_mb=size,
            base_compute_s=1.0,
        ),
    )


def quiet_config(seed=0):
    return EngineConfig(
        seed=seed,
        noise_kind="none",
        noise_params={},
        topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
    )


def small_runtime(stream, scheduler=None, pipeline=None, config=None):
    profile = make_profile(make_spec("w1"), make_spec("w2", network=20.0, rw=100.0))
    return WorkflowRuntime(
        profile=profile,
        stream=stream,
        scheduler=scheduler or make_scheduler("round-robin"),
        pipeline=pipeline,
        config=config or quiet_config(),
    )


class TestTermination:
    def test_simple_stream_completes(self):
        stream = JobStream(
            arrivals=[analysis_job(f"j{i}", repo=f"r{i}", size=10.0) for i in range(6)]
        )
        runtime = small_runtime(stream)
        result = runtime.run()
        assert result.jobs_completed == 6
        assert runtime.master.outstanding == 0
        assert runtime.master.done.triggered

    def test_arrival_times_respected(self):
        stream = JobStream(arrivals=[analysis_job("late", at=50.0)])
        runtime = small_runtime(stream)
        result = runtime.run()
        assert result.makespan_s >= 50.0

    def test_deadline_guard_raises_on_stall(self):
        stream = JobStream(arrivals=[analysis_job("j", repo="r", size=1e9)])
        config = EngineConfig(
            seed=0,
            noise_kind="none",
            noise_params={},
            max_sim_time=10.0,
        )
        runtime = small_runtime(stream, config=config)
        with pytest.raises(RuntimeError, match="did not complete"):
            runtime.run()

    def test_requires_workers(self):
        from repro.engine.master import Master

        with pytest.raises(ValueError):
            Master(
                sim=None,
                topology=None,
                pipeline=single_task_pipeline(),
                policy=None,
                worker_names=[],
                stream=JobStream(),
                metrics=None,
            )


class TestPipelineExpansion:
    def build_expanding_pipeline(self):
        def expand(job):
            if job.task != "generator":
                return []
            return [
                Job(job_id=f"{job.job_id}-child-{i}", task=TASK_ANALYZER, repo_id=f"cr{i}", size_mb=5.0)
                for i in range(3)
            ]

        pipeline = Pipeline(name="expanding")
        pipeline.add_task(
            Task(name="generator", consumes=("Seed",), produces=(KIND_ANALYSIS,), handle=expand)
        )
        pipeline.add_task(Task(name=TASK_ANALYZER, consumes=(KIND_ANALYSIS,)))
        pipeline.connect("Seed", None, "generator")
        pipeline.connect(KIND_ANALYSIS, "generator", TASK_ANALYZER)
        pipeline.validate()
        return pipeline

    def test_children_submitted_and_counted(self):
        pipeline = self.build_expanding_pipeline()
        stream = JobStream(
            arrivals=[JobArrival(at=0.0, job=Job(job_id="seed", task="generator"))]
        )
        runtime = small_runtime(stream, pipeline=pipeline)
        result = runtime.run()
        # 1 seed + 3 children.
        assert result.jobs_completed == 4

    def test_master_side_task_runs_inline(self):
        processed = []

        def sink_handle(job):
            processed.append(job.job_id)
            return []

        def expand(job):
            return [Job(job_id=f"{job.job_id}-rec", task="sink", payload=())]

        pipeline = Pipeline(name="with-sink")
        pipeline.add_task(
            Task(name=TASK_ANALYZER, consumes=(KIND_ANALYSIS,), produces=("Rec",), handle=expand)
        )
        pipeline.add_task(Task(name="sink", consumes=("Rec",), handle=sink_handle, on_master=True))
        pipeline.connect(KIND_ANALYSIS, None, TASK_ANALYZER)
        pipeline.connect("Rec", TASK_ANALYZER, "sink")
        pipeline.validate()

        stream = JobStream(arrivals=[analysis_job("j1", repo="r1", size=10.0)])
        runtime = small_runtime(stream, pipeline=pipeline)
        result = runtime.run()
        assert processed == ["j1-rec"]
        assert result.jobs_completed == 2


class TestAssignmentBookkeeping:
    def test_assignments_recorded(self):
        stream = JobStream(
            arrivals=[analysis_job(f"j{i}", repo=f"r{i}", size=5.0) for i in range(4)]
        )
        runtime = small_runtime(stream)
        runtime.run()
        assert set(runtime.master.assignments) == {"j0", "j1", "j2", "j3"}
        # Round-robin across two workers.
        assert sorted(runtime.master.assignments.values()) == ["w1", "w1", "w2", "w2"]

    def test_assign_to_unknown_worker_rejected(self):
        class BadPolicy(MasterPolicy):
            name = "bad"

            def on_job(self, job):
                self.master.assign(job, "ghost-worker")

        policy = SchedulerPolicy(
            name="bad", master_factory=BadPolicy, worker_factory=PassiveWorkerPolicy
        )
        stream = JobStream(arrivals=[analysis_job("j0", repo="r", size=5.0)])
        runtime = small_runtime(stream, scheduler=policy)
        with pytest.raises(ValueError, match="unknown worker"):
            runtime.run()

    def test_arbitrary_worker_uses_run_rng(self):
        stream = JobStream(
            arrivals=[analysis_job(f"j{i}", repo=f"r{i}", size=5.0) for i in range(10)]
        )
        a = small_runtime(stream, scheduler=make_scheduler("random"), config=quiet_config(5))
        b = small_runtime(stream, scheduler=make_scheduler("random"), config=quiet_config(5))
        assert a.run().per_worker_jobs == b.run().per_worker_jobs


class TestDoubleCompletionGuard:
    def test_duplicate_completion_detected(self):
        from repro.engine.messages import JobCompleted

        stream = JobStream(arrivals=[analysis_job("j0", repo="r", size=5.0)])
        runtime = small_runtime(stream)
        runtime.run()
        job = stream.jobs[0]
        with pytest.raises(RuntimeError, match="more times than submitted"):
            runtime.master._on_completed(JobCompleted(job=job, worker="w1"))
