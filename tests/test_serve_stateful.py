"""Stateful property tests for the service layer's front door.

The admission controller is modelled against a plain dict-of-lists
reference: under any interleaving of offers and dequeues the bounded
queue must hold, conservation must hold (admitted = dequeued + still
pending), FIFO order within a tenant must hold, and counters must
match the model exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.serve.admission import ADMIT, SHED, AdmissionConfig, AdmissionController
from repro.serve.slo import P2Quantile
from repro.sim import Simulator
from repro.workload.job import Job
from repro.workload.msr import TASK_ANALYZER

QUEUE_CAP = 7
TENANTS = ("a", "b", "c")


class AdmissionModel(RuleBasedStateMachine):
    """Reject-policy admission vs. a dict-of-deques reference model."""

    def __init__(self):
        super().__init__()
        self.controller = AdmissionController(
            Simulator(),
            AdmissionConfig(queue_cap=QUEUE_CAP, tenant_weights={"a": 2.0}),
        )
        self.pending: dict[str, list[str]] = {t: [] for t in TENANTS}
        self.admitted = 0
        self.shed = 0
        self.dequeued = 0
        self.counter = 0

    tenants = st.sampled_from(TENANTS)

    def _depth(self) -> int:
        return sum(len(q) for q in self.pending.values())

    @rule(tenant=tenants)
    def offer(self, tenant):
        job_id = f"{tenant}-{self.counter}"
        self.counter += 1
        job = Job(job_id=job_id, task=TASK_ANALYZER, payload=(tenant,))
        decision = self.controller.offer(job, tenant)
        if self._depth() >= QUEUE_CAP:
            assert decision.action == SHED
            assert decision.reason == "queue_full"
            self.shed += 1
        else:
            assert decision.action == ADMIT
            self.pending[tenant].append(job_id)
            self.admitted += 1

    @rule()
    def dequeue(self):
        entry = self.controller.next_job()
        if self._depth() == 0:
            assert entry is None
            return
        job, tenant = entry
        # The dequeued job must be the *oldest* pending one of its tenant
        # (FIFO within a tenant; the scheduler only picks *which* tenant).
        assert self.pending[tenant], f"tenant {tenant} had nothing pending"
        assert job.job_id == self.pending[tenant].pop(0)
        self.dequeued += 1

    @invariant()
    def bounded_queue(self):
        assert self.controller.depth <= QUEUE_CAP
        assert self.controller.depth_peak <= QUEUE_CAP

    @invariant()
    def conservation(self):
        assert self.controller.depth == self._depth()
        assert self.controller.admitted == self.admitted
        assert self.controller.shed == self.shed
        assert self.admitted == self.dequeued + self._depth()

    @invariant()
    def per_tenant_counters_sum(self):
        assert sum(self.controller.per_tenant_admitted.values()) == self.admitted
        assert sum(self.controller.per_tenant_shed.values()) == self.shed


TestAdmissionModel = AdmissionModel.TestCase


@settings(max_examples=40)
@given(
    st.lists(
        st.floats(min_value=0.001, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=300,
    )
)
def test_p2_sketch_brackets_the_data(samples):
    """The P-squared estimate always lies within the observed range, and
    matches nearest-rank exactly while the sample is small."""
    sketch = P2Quantile(0.95)
    for x in samples:
        sketch.observe(x)
    assert min(samples) <= sketch.value() <= max(samples)
    if len(samples) <= 5:
        rank = max(0, min(len(samples) - 1, round(0.95 * (len(samples) - 1))))
        assert sketch.value() == sorted(samples)[rank]
