"""Edge cases of the direct-callback timer API and the fluid pipe.

These pin down the corner semantics the kernel hot-path overhaul must
preserve: lazy cancellation via generation tokens, timeout pooling,
deadline-exact ``run(until=...)``, and the fair-share pipe's behaviour
at zero size, simultaneous completion and sub-float-resolution
residuals.
"""

import pytest

from repro.net.bandwidth import FairSharePipe
from repro.sim import Simulator, TimerHandle


# -- TimerHandle / call_at / call_later --------------------------------------


class TestTimerHandle:
    def test_fires_at_scheduled_time_with_args(self, sim):
        fired = []
        sim.call_later(2.5, lambda a, b: fired.append((sim.now, a, b)), "x", 7)
        sim.run()
        assert fired == [(2.5, "x", 7)]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        handle = sim.call_later(1.0, fired.append, "nope")
        assert handle.active
        handle.cancel()
        assert not handle.active
        sim.run()
        assert fired == []
        # The stale heap entry still advanced the clock to its slot.
        assert sim.now == 1.0

    def test_cancel_after_fire_is_noop_and_handle_is_reusable(self, sim):
        fired = []
        handle = sim.call_later(1.0, fired.append, "first")
        sim.run()
        assert fired == ["first"]
        assert not handle.active
        handle.cancel()  # must not raise or corrupt the generation
        sim.call_later(1.0, fired.append, "second", handle=handle)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_rearm_supersedes_pending_occurrence(self, sim):
        fired = []
        handle = sim.call_later(1.0, lambda: fired.append(sim.now))
        # Re-arming bumps the generation: the t=1 entry goes stale.
        sim.call_at(3.0, lambda: fired.append(sim.now), handle=handle)
        sim.run()
        assert fired == [3.0]

    def test_rearm_after_cancel_fires_once(self, sim):
        fired = []
        handle = sim.call_later(1.0, lambda: fired.append(sim.now))
        handle.cancel()
        sim.call_later(2.0, lambda: fired.append(sim.now), handle=handle)
        sim.run()
        assert fired == [2.0]

    def test_callback_may_rearm_its_own_handle(self, sim):
        ticks = []
        handle = TimerHandle()

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 3:
                sim.call_later(1.0, tick, handle=handle)

        sim.call_later(1.0, tick, handle=handle)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_call_at_in_the_past_raises(self, sim):
        sim.call_later(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(0.5, lambda: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(ValueError):
            sim.call_later(-0.1, lambda: None)

    def test_timers_interleave_with_events_in_schedule_order(self, sim):
        order = []
        sim.call_later(1.0, lambda: order.append("timer"))

        def proc():
            yield sim.timeout(1.0)
            order.append("process")

        sim.process(proc())
        sim.run()
        # Timer was armed before the process's timeout was scheduled, so
        # at the shared timestamp it keeps FIFO arming order.
        assert order == ["timer", "process"]


class TestRunUntilDeadline:
    def test_entry_exactly_on_deadline_is_processed(self, sim):
        fired = []
        sim.call_later(5.0, lambda: fired.append(sim.now))
        sim.run(until=5.0)
        assert fired == [5.0]
        assert sim.now == 5.0

    def test_clock_lands_exactly_on_deadline_with_no_entries(self, sim):
        sim.call_later(1.0, lambda: None)
        sim.run(until=7.25)
        assert sim.now == 7.25

    def test_entries_after_deadline_stay_scheduled(self, sim):
        fired = []
        sim.call_later(10.0, lambda: fired.append(sim.now))
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()
        assert fired == [10.0]


class TestSleepPooling:
    def test_sleep_instances_are_recycled(self, sim):
        seen = []

        def proc():
            for _ in range(6):
                event = sim.sleep(0.5)
                seen.append(id(event))
                yield event

        sim.process(proc())
        sim.run()
        assert sim.now == 3.0
        # The pool recycles processed instances, so fewer distinct
        # objects than sleeps (exact count depends on recycle timing).
        assert len(set(seen)) < len(seen)

    def test_sleep_value_round_trips(self, sim):
        got = []

        def proc():
            got.append((yield sim.sleep(1.0, value="payload")))

        sim.process(proc())
        sim.run()
        assert got == ["payload"]

    def test_negative_sleep_raises_with_and_without_pool(self, sim):
        with pytest.raises(ValueError):
            sim.sleep(-1.0)  # pool empty: plain construction path

        def proc():
            yield sim.sleep(0.1)

        sim.process(proc())
        sim.run()  # a processed sleep now sits in the pool
        with pytest.raises(ValueError):
            sim.sleep(-1.0)  # pooled path


# -- FairSharePipe edges -----------------------------------------------------


class TestPipeEdges:
    def test_zero_size_transfer_completes_immediately(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=10.0)
        done = pipe.transfer(0.0)
        assert done.triggered
        sim.run()
        assert done.processed
        assert done.value == 0.0
        assert pipe.active_count == 0

    def test_simultaneous_completions_fire_in_start_order(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=100.0)
        order = []
        first = pipe.transfer(10.0)
        second = pipe.transfer(10.0)
        first.add_callback(lambda e: order.append(("first", sim.now)))
        second.add_callback(lambda e: order.append(("second", sim.now)))
        sim.run()
        # Equal sizes at equal share: both finish at 2*size/capacity.
        assert order == [("first", 0.2), ("second", 0.2)]
        assert first.value == second.value == 0.2

    def test_sub_resolution_residual_does_not_spin(self, sim):
        # At now=1e9 the clock's ulp (~1.2e-7 s) exceeds this transfer's
        # duration (1e-8 s): the completion time rounds to *now*, which
        # the residual-zeroing path must finish without a timer that can
        # never advance the clock.
        big = Simulator(start_time=1e9)
        pipe = FairSharePipe(big, capacity_mbps=100.0)
        done = pipe.transfer(1e-6)
        big.run()
        assert done.processed
        assert done.value == 0.0
        assert pipe.active_count == 0

    def test_sub_resolution_residual_between_peers(self, sim):
        # Two nearly-identical residuals: when the first completes, the
        # second's leftover is below the 1e-9 relative threshold and
        # must be swept up in the same settle instead of re-arming a
        # zero-advance timer.
        pipe = FairSharePipe(sim, capacity_mbps=100.0)
        first = pipe.transfer(10.0)
        second = pipe.transfer(10.0 * (1.0 + 1e-12))
        sim.run()
        assert first.processed and second.processed
        assert pipe.active_count == 0
        assert not pipe._timer.active

    def test_staggered_transfers_share_capacity(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=100.0)
        times = {}
        first = pipe.transfer(10.0)
        first.add_callback(lambda e: times.__setitem__("first", sim.now))

        def late():
            yield sim.sleep(0.05)
            done = pipe.transfer(10.0)
            done.add_callback(lambda e: times.__setitem__("second", sim.now))

        sim.process(late())
        sim.run()
        # First: 5 MB alone (0.05s) + 5 MB at half rate (0.1s) = 0.15s.
        assert times["first"] == pytest.approx(0.15)
        # Second: 5 MB at half rate + 5 MB alone = 0.1 + 0.05 after start.
        assert times["second"] == pytest.approx(0.2)
