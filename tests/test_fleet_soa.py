"""Unit tests for the struct-of-arrays building blocks (:mod:`repro.fleet`).

The contract under test everywhere: each vectorised helper must select
*exactly* what the Python scan it replaced selected, including the
tie-breaks the determinism fixture pins (lexicographic names for
``min``/``max`` over dicts, first occurrence for ``np.argmin`` over the
executor order, insertion order for dict walks).
"""

from collections import deque

import numpy as np
import pytest

from repro.fleet import (
    BitMatrix,
    HolderMatrix,
    HoldingsIndex,
    JobAgeTable,
    LoadTable,
    LocalityQueue,
    argmax_value_rank,
    argmin_value_rank,
    name_ranks,
)
from repro.workload.job import Job


def _job(job_id, repo=None):
    if repo is None:
        return Job(job_id=job_id, task="t")
    return Job(job_id=job_id, task="t", repo_id=repo, size_mb=1.0)


class TestRankHelpers:
    def test_ranks_are_lexicographic(self):
        names = ["w10", "w2", "w1", "a"]
        ranks = name_ranks(names)
        by_rank = [names[i] for i in np.argsort(ranks)]
        assert by_rank == sorted(names)

    def test_argmin_matches_tuple_min(self):
        names = ["w3", "w1", "w2", "w10"]
        values = np.array([2.0, 5.0, 2.0, 2.0])
        ranks = name_ranks(names)
        table = dict(zip(names, values))
        expected = min(table, key=lambda n: (table[n], n))
        assert names[argmin_value_rank(values, ranks)] == expected == "w10"

    def test_argmax_matches_tuple_max(self):
        # Python's max over (value, name) tuples prefers the *largest*
        # name among value ties -- the flip side of the min tie-break.
        names = ["w3", "w1", "w2", "w10"]
        values = np.array([5.0, 5.0, 2.0, 5.0])
        ranks = name_ranks(names)
        table = dict(zip(names, values))
        expected = max(table, key=lambda n: (table[n], n))
        assert names[argmax_value_rank(values, ranks)] == expected == "w3"

    def test_masked_argmin_and_empty_domain(self):
        values = np.array([3.0, 1.0, 2.0])
        ranks = name_ranks(["a", "b", "c"])
        mask = np.array([True, False, True])
        assert argmin_value_rank(values, ranks, mask) == 2
        assert argmin_value_rank(values, ranks, np.zeros(3, dtype=bool)) == -1

    def test_empty_unmasked_domain_rejected(self):
        empty = np.zeros(0)
        with pytest.raises(ValueError):
            argmin_value_rank(empty, np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            argmax_value_rank(empty, np.zeros(0, dtype=np.int64))


class TestBitMatrix:
    def test_growth_past_initial_capacity(self):
        matrix = BitMatrix()
        for row in range(20):
            for k in range(12):
                matrix.set(row, f"r{(row + k) % 25}", True)
        for row in range(20):
            assert matrix.row_contents(row) == {f"r{(row + k) % 25}" for k in range(12)}

    def test_clear_and_unset(self):
        matrix = BitMatrix()
        matrix.set(0, "r1", True)
        matrix.set(0, "r2", True)
        matrix.set(0, "r1", False)
        assert matrix.row_contents(0) == {"r2"}
        matrix.clear_row(0)
        assert matrix.row_contents(0) == set()

    def test_unset_of_unknown_repo_creates_no_column(self):
        matrix = BitMatrix()
        matrix.set(0, "ghost", False)
        assert matrix.n_repos == 0
        assert not matrix.test(0, "ghost")

    def test_column_mask(self):
        matrix = BitMatrix()
        matrix.set(2, "r1", True)
        mask = matrix.column_mask("r1", 4)
        assert list(mask) == [False, False, True, False]
        assert matrix.column_mask("ghost", 4) is None


class TestHolderMatrix:
    def setup_method(self):
        self.names = ["w1", "w2", "w3"]
        self.view = {"w1": {"r1"}, "w3": {"r1", "r2"}}
        self.matrix = HolderMatrix(self.names, self.view)

    def test_dataless_job_local_everywhere(self):
        assert list(self.matrix.holders(self.matrix.job_col(None))) == [True] * 3

    def test_unknown_repo_local_nowhere(self):
        assert list(self.matrix.holders(self.matrix.job_col("ghost"))) == [False] * 3

    def test_holders_mirror_view(self):
        assert list(self.matrix.holders(self.matrix.job_col("r1"))) == [
            True,
            False,
            True,
        ]

    def test_local_for_row_matches_per_job_probe(self):
        jobs = [_job("a", "r1"), _job("b"), _job("c", "ghost"), _job("d", "r2")]
        cols = self.matrix.job_cols(jobs)
        for name in self.names:
            row = self.matrix.index[name]
            expected = [
                job.repo_id is None or job.repo_id in self.view.get(name, ())
                for job in jobs
            ]
            assert list(self.matrix.local_for_row(row, cols)) == expected


class TestJobAgeTable:
    def test_overdue_in_insertion_order(self):
        table = JobAgeTable()
        for i in range(5):
            table.add(f"j{i}", f"job-{i}", f"w{i % 2}", at=float(i))
        hits = table.overdue(now=10.0, timeout=7.5)
        assert hits == [("job-0", "w0"), ("job-1", "w1"), ("job-2", "w0")]

    def test_update_in_place_keeps_position(self):
        # Re-adding a live id mirrors a dict value update: the key keeps
        # its original iteration position.
        table = JobAgeTable()
        table.add("a", "A", "w1", at=0.0)
        table.add("b", "B", "w1", at=0.0)
        table.add("a", "A", "w2", at=1.0)
        assert table.overdue(now=100.0, timeout=1.0) == [("A", "w2"), ("B", "w1")]

    def test_compaction_preserves_order(self):
        table = JobAgeTable()
        for i in range(200):
            table.add(f"j{i}", f"job-{i}", "w", at=float(i))
        for i in range(0, 200, 2):
            table.remove(f"j{i}")  # > 64 dead triggers compaction
        assert len(table) == 100
        hits = table.overdue(now=1000.0, timeout=0.0)
        assert [job for job, _ in hits] == [f"job-{i}" for i in range(1, 200, 2)]
        table.add("late", "LATE", "w", at=0.0)
        assert table.overdue(now=1000.0, timeout=0.0)[-1] == ("LATE", "w")

    def test_remove_unknown_is_noop(self):
        table = JobAgeTable()
        table.remove("ghost")
        assert len(table) == 0


class TestLoadTable:
    def test_pop_swap_remove_keeps_scans_exact(self):
        table = LoadTable()
        ref = {"w1": 3.0, "w2": 1.0, "w3": 2.0, "w4": 1.0}
        table.reset(ref)
        table.pop("w2")
        del ref["w2"]
        assert table.argmin_name() == min(ref, key=lambda n: (ref[n], n)) == "w4"
        assert table.argmax_name() == max(ref, key=lambda n: (ref[n], n)) == "w1"
        assert "w2" not in table and "w4" in table

    def test_integer_dtype_counts(self):
        table = LoadTable(dtype=np.int64)
        table.reset({"w1": 0, "w2": 0})
        table.add("w2", 3)
        assert table.get("w2") == 3
        assert table.argmin_name() == "w1"


class TestLocalityQueue:
    def _queue(self):
        hx = HoldingsIndex()
        hx.add("w1", "r1")
        hx.add("w2", "r2")
        queue = LocalityQueue(hx)
        return hx, queue

    def test_deque_parity(self):
        _, queue = self._queue()
        reference = deque()
        jobs = [_job(f"j{i}", f"r{i % 3}") for i in range(6)] + [_job("plain")]
        for job in jobs[:4]:
            queue.append(job)
            reference.append(job)
        queue.appendleft(jobs[4])
        reference.appendleft(jobs[4])
        assert list(queue) == list(reference)
        assert queue.popleft() is reference.popleft()
        queue.delete(1)
        del reference[1]
        assert list(queue) == list(reference)
        assert len(queue) == len(reference) and bool(queue)

    def test_local_mask_matches_holdings(self):
        hx, queue = self._queue()
        holdings = {"w1": {"r1"}, "w2": {"r2"}}
        for job in [_job("a", "r1"), _job("b", "r2"), _job("c"), _job("d", "r9")]:
            queue.append(job)
        for worker in ("w1", "w2", "stranger"):
            expected = [
                job.repo_id is None or job.repo_id in holdings.get(worker, ())
                for job in queue
            ]
            assert list(queue.local_mask(worker)) == expected

    def test_first_local(self):
        _, queue = self._queue()
        queue.append(_job("a", "r9"))
        queue.append(_job("b", "r2"))
        assert queue.first_local("w2") == 1
        assert queue.first_local("w1") == -1

    def test_drop_worker_wipes_row(self):
        hx, queue = self._queue()
        queue.append(_job("a", "r1"))
        assert queue.first_local("w1") == 0
        hx.drop_worker("w1")
        assert queue.first_local("w1") == -1
        # Re-learned holdings reuse the row.
        hx.add("w1", "r1")
        assert queue.first_local("w1") == 0

    def test_without_index_mask_is_none(self):
        queue = LocalityQueue()
        queue.append(_job("a", "r1"))
        assert queue.local_mask("w1") is None
        assert queue.first_local("w1") == -1
