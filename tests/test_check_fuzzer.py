"""The scenario fuzzer (``repro.check.fuzzer``): generation, shrinking,
self-validation against the planted bugs, and regression seeds.

The regression seeds at the bottom each encode a real engine bug this
fuzzer found during development (stale subscriptions after a crash,
pull-loop stalls under message loss, a fleet-wipe race in the injector,
offers lost with their crashed offeree).  They must stay clean forever.
"""

import json

import pytest

from repro.check.fuzzer import (
    PLANTS,
    Scenario,
    fuzz,
    generate_scenario,
    run_scenario,
    shrink,
)


class TestGeneration:
    def test_generation_is_deterministic(self):
        assert generate_scenario(42) == generate_scenario(42)
        assert generate_scenario(42) != generate_scenario(43)

    def test_generated_scenarios_are_wellformed(self):
        for seed in range(30):
            scenario = generate_scenario(seed)
            assert 2 <= len(scenario.workers) <= 6
            assert 1 <= len(scenario.jobs) <= 24
            if scenario.faults is not None:
                # Liveness: generated fault plans always allow recovery.
                assert scenario.faults.recovery is not None

    def test_planted_generation_forces_the_bug(self):
        double = generate_scenario(7, planted="double-allocate")
        assert double.scheduler == "planted:double-allocate"
        pipe = generate_scenario(7, planted="overdelivery")
        assert pipe.planted_pipe
        migrator = generate_scenario(7, planted="buggy-migrator")
        assert migrator.planted_migrator
        assert migrator.reconfig is not None and migrator.reconfig.migrations
        with pytest.raises(ValueError):
            generate_scenario(7, planted="no-such-plant")

    def test_reconfig_generation_is_deterministic_and_optional(self):
        assert generate_scenario(42, reconfig=True) == generate_scenario(
            42, reconfig=True
        )
        # Without the flag (or the migrator plant), no reconfig is drawn.
        assert generate_scenario(42).reconfig is None
        # With it, some seeds carry migrations and some carry swaps.
        plans = [
            generate_scenario(seed, reconfig=True).reconfig for seed in range(30)
        ]
        assert any(plan is not None and plan.migrations for plan in plans)
        assert any(plan is not None and plan.swaps for plan in plans)


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        for seed in (0, 3, 11):
            scenario = generate_scenario(seed)
            assert Scenario.from_json(scenario.to_json()) == scenario

    def test_json_round_trip_preserves_reconfig(self):
        for seed in (0, 3, 11):
            scenario = generate_scenario(seed, reconfig=True)
            assert Scenario.from_json(scenario.to_json()) == scenario
        planted = generate_scenario(0, planted="buggy-migrator")
        restored = Scenario.from_json(planted.to_json())
        assert restored == planted
        assert restored.planted_migrator

    def test_json_file_round_trip(self, tmp_path):
        scenario = generate_scenario(5)
        path = tmp_path / "scenario.json"
        scenario.to_json(str(path))
        assert Scenario.from_json(f"@{path}") == scenario

    def test_json_is_plain_data(self):
        payload = json.loads(generate_scenario(5).to_json())
        assert payload["seed"] == 5
        assert isinstance(payload["workers"], list)
        assert isinstance(payload["jobs"], list)


class TestReplayDeterminism:
    def test_same_scenario_same_outcome(self):
        # A faulted scenario replayed twice: identical classification.
        scenario = generate_scenario(3409)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.signature == second.signature
        assert first.message == second.message


class TestPlantedSelfValidation:
    def test_plants_registry(self):
        assert set(PLANTS) == {"double-allocate", "overdelivery", "buggy-migrator"}

    @pytest.mark.parametrize("plant", sorted(PLANTS))
    def test_planted_bug_is_found_and_shrunk_small(self, plant):
        report = fuzz(budget_s=60.0, seed=0, planted=plant, max_scenarios=25)
        assert report.failures, f"planted {plant} escaped the fuzzer"
        failure = report.failures[0]
        kind, _ = failure.signature
        assert kind == "InvariantViolation"
        # The acceptance bar: minimal deterministic reproducers.
        assert len(failure.shrunk.jobs) <= 4
        assert len(failure.shrunk.workers) <= 3
        # And the shrunk scenario still fails the same way, twice.
        assert run_scenario(failure.shrunk).signature == failure.signature
        assert run_scenario(failure.shrunk).signature == failure.signature

    def test_shrink_preserves_the_signature(self):
        scenario = generate_scenario(0, planted="double-allocate")
        original = run_scenario(scenario)
        assert original.signature is not None
        shrunk = shrink(scenario)
        assert run_scenario(shrunk).signature == original.signature
        assert len(shrunk.jobs) <= len(scenario.jobs)
        assert len(shrunk.workers) <= len(scenario.workers)


class TestRegressionSeeds:
    # Each seed reproduced a distinct engine bug when first drawn; the
    # fixes live in the modules named below.  All must now run clean.
    SEEDS = {
        315: "bidding: stale announce subscription after a crash (core/bidding)",
        157: "matchmaking: pull loop stalled by message loss (schedulers/matchmaking)",
        1021: "delay: pull loop stalled by message loss (schedulers/delay)",
        21558: "injector fleet-wipe race + empty-fleet redispatch (faults/injector, engine/master)",
        3409: "baseline: offer lost with its crashed offeree (schedulers/baseline)",
    }

    @pytest.mark.parametrize("seed", sorted(SEEDS))
    def test_regression_seed_is_clean(self, seed):
        outcome = run_scenario(generate_scenario(seed))
        assert outcome.signature is None, (
            f"seed {seed} regressed: {self.SEEDS[seed]} -- {outcome.message}"
        )

    #: Reconfig-mode regression seeds: drawn with ``reconfig=True``.
    RECONFIG_SEEDS = {
        1815: "swapped-in pull scheduler wedged by message loss "
        "(fuzzer swap liveness guard)",
    }

    @pytest.mark.parametrize("seed", sorted(RECONFIG_SEEDS))
    def test_reconfig_regression_seed_is_clean(self, seed):
        outcome = run_scenario(generate_scenario(seed, reconfig=True))
        assert outcome.signature is None, (
            f"seed {seed} regressed: {self.RECONFIG_SEEDS[seed]} -- {outcome.message}"
        )


class TestFuzzLoop:
    def test_short_unplanted_fuzz_is_clean(self):
        # A quick smoke pass; the CI fuzz job runs a longer budget.
        report = fuzz(budget_s=5.0, seed=0)
        assert report.scenarios_run > 0
        assert report.ok, [f.signature for f in report.failures]

    def test_max_scenarios_caps_the_loop(self):
        report = fuzz(budget_s=60.0, seed=0, max_scenarios=3)
        assert report.scenarios_run == 3

    def test_short_reconfig_fuzz_is_clean(self):
        # Migrations and hot-swaps mixed into every scenario; the CI
        # fuzz job runs this mode with a much longer budget.
        report = fuzz(budget_s=5.0, seed=0, reconfig=True)
        assert report.scenarios_run > 0
        assert report.ok, [f.signature for f in report.failures]
