"""Unit tests for generator-based processes and interrupts."""

import pytest

from repro.sim import Event, Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestProcessBasics:
    def test_return_value_becomes_event_value(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            return "result"

        assert sim.run(sim.process(proc(sim))) == "result"

    def test_yield_receives_event_value(self, sim):
        def proc(sim):
            value = yield sim.timeout(2.0, value="payload")
            return value

        assert sim.run(sim.process(proc(sim))) == "payload"

    def test_process_without_yield_still_runs(self, sim):
        def proc(sim):
            return "instant"
            yield  # pragma: no cover - makes it a generator

        assert sim.run(sim.process(proc(sim))) == "instant"

    def test_process_is_alive_until_finished(self, sim):
        def proc(sim):
            yield sim.timeout(5.0)

        process = sim.process(proc(sim))
        assert process.is_alive
        sim.run()
        assert not process.is_alive

    def test_processes_wait_on_each_other(self, sim):
        def child(sim):
            yield sim.timeout(3.0)
            return "child-result"

        def parent(sim):
            result = yield sim.process(child(sim))
            return (sim.now, result)

        assert sim.run(sim.process(parent(sim))) == (3.0, "child-result")

    def test_waiting_on_finished_process_returns_immediately(self, sim):
        def child(sim):
            yield sim.timeout(1.0)
            return 7

        child_proc = sim.process(child(sim))
        sim.run()

        def parent(sim):
            value = yield child_proc
            return value

        assert sim.run(sim.process(parent(sim))) == 7

    def test_exception_in_process_propagates(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("inside")

        sim.process(proc(sim))
        with pytest.raises(RuntimeError, match="inside"):
            sim.run()

    def test_waiter_can_catch_child_failure(self, sim):
        def child(sim):
            yield sim.timeout(1.0)
            raise ValueError("child failed")

        def parent(sim):
            try:
                yield sim.process(child(sim))
            except ValueError as exc:
                return f"caught: {exc}"

        assert sim.run(sim.process(parent(sim))) == "caught: child failed"

    def test_yielding_non_event_fails_process(self, sim):
        def proc(sim):
            yield 42

        sim.process(proc(sim))
        with pytest.raises(RuntimeError, match="non-event"):
            sim.run()

    def test_named_process_repr(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)

        process = sim.process(proc(sim), name="my-proc")
        assert "my-proc" in repr(process)
        sim.run()


class TestInterrupt:
    def test_interrupt_aborts_wait(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
                return "overslept"
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, sim.now)

        def waker(sim, target):
            yield sim.timeout(5.0)
            target.interrupt("cause-object")

        sleeper_proc = sim.process(sleeper(sim))
        sim.process(waker(sim, sleeper_proc))
        assert sim.run(sleeper_proc) == ("interrupted", "cause-object", 5.0)

    def test_interrupted_process_can_continue(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(2.0)
            return sim.now

        def waker(sim, target):
            yield sim.timeout(1.0)
            target.interrupt()

        sleeper_proc = sim.process(sleeper(sim))
        sim.process(waker(sim, sleeper_proc))
        assert sim.run(sleeper_proc) == 3.0

    def test_stale_target_does_not_resume_after_interrupt(self, sim):
        resumed_values = []

        def sleeper(sim):
            try:
                yield sim.timeout(10.0)
                resumed_values.append("timeout")
            except Interrupt:
                resumed_values.append("interrupt")
            yield sim.timeout(20.0)
            resumed_values.append("second-wait")

        def waker(sim, target):
            yield sim.timeout(1.0)
            target.interrupt()

        proc = sim.process(sleeper(sim))
        sim.process(waker(sim, proc))
        sim.run()
        # The original 10s timeout must NOT wake the process a second time.
        assert resumed_values == ["interrupt", "second-wait"]

    def test_uncaught_interrupt_fails_process(self, sim):
        def sleeper(sim):
            yield sim.timeout(100.0)

        def waker(sim, target):
            yield sim.timeout(1.0)
            target.interrupt()

        sleeper_proc = sim.process(sleeper(sim))
        sim.process(waker(sim, sleeper_proc))
        with pytest.raises(Interrupt):
            sim.run()

    def test_interrupting_finished_process_raises(self, sim):
        def quick(sim):
            yield sim.timeout(1.0)

        process = sim.process(quick(sim))
        sim.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_self_interrupt_rejected(self, sim):
        def proc(sim):
            this = sim.active_process
            with pytest.raises(RuntimeError):
                this.interrupt()
            yield sim.timeout(1.0)

        sim.run(sim.process(proc(sim)))

    def test_interrupt_cause_accessible(self):
        interrupt = Interrupt({"reason": "test"})
        assert interrupt.cause == {"reason": "test"}

    def test_interrupt_beats_simultaneous_event(self, sim):
        """An interrupt scheduled at the same instant as the waited event
        is delivered first (URGENT priority)."""

        def sleeper(sim):
            try:
                yield sim.timeout(5.0)
                return "event"
            except Interrupt:
                return "interrupt"

        def waker(sim, target):
            yield sim.timeout(5.0)
            target.interrupt()

        sleeper_proc = sim.process(sleeper(sim))

        def late_waker(sim, target):
            # Fires at t=5 before the timeout is processed in step order?
            # The timeout was scheduled first, so it processes first; the
            # sleeper is already finished by the time the waker acts.
            yield sim.timeout(4.0)
            yield sim.timeout(1.0)
            if target.is_alive:
                target.interrupt()

        sim.process(late_waker(sim, sleeper_proc))
        assert sim.run(sleeper_proc) in ("event", "interrupt")
