"""Unit tests for the worker-local clone cache."""

import pytest

from repro.data.cache import WorkerCache


class TestUnboundedCache:
    def test_miss_then_hit(self):
        cache = WorkerCache()
        assert not cache.lookup("r1")
        cache.insert("r1", 100.0)
        assert cache.lookup("r1")
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_peek_does_not_count(self):
        cache = WorkerCache()
        assert not cache.peek("r1")
        cache.insert("r1", 10.0)
        assert cache.peek("r1")
        assert cache.stats.misses == 0
        assert cache.stats.hits == 0

    def test_insert_tracks_download_volume(self):
        cache = WorkerCache()
        cache.insert("r1", 100.0)
        cache.insert("r2", 50.0)
        assert cache.stats.mb_downloaded == pytest.approx(150.0)
        assert cache.used_mb == pytest.approx(150.0)

    def test_reinsert_does_not_recount(self):
        cache = WorkerCache()
        cache.insert("r1", 100.0)
        cache.insert("r1", 100.0)
        assert cache.stats.mb_downloaded == pytest.approx(100.0)
        assert len(cache) == 1

    def test_reinsert_updates_size(self):
        cache = WorkerCache()
        cache.insert("r1", 100.0)
        cache.insert("r1", 120.0)
        assert cache.used_mb == pytest.approx(120.0)

    def test_contains(self):
        cache = WorkerCache()
        cache.insert("r1", 1.0)
        assert "r1" in cache
        assert "r2" not in cache

    def test_hit_ratio(self):
        cache = WorkerCache()
        cache.lookup("a")  # miss
        cache.insert("a", 1.0)
        cache.lookup("a")  # hit
        cache.lookup("a")  # hit
        assert cache.stats.hit_ratio == pytest.approx(2 / 3)

    def test_hit_ratio_empty(self):
        assert WorkerCache().stats.hit_ratio == 0.0

    def test_invalid_sizes_rejected(self):
        cache = WorkerCache()
        with pytest.raises(ValueError):
            cache.insert("r", 0.0)
        with pytest.raises(ValueError):
            WorkerCache(capacity_mb=0.0)


class TestLRUEviction:
    def test_evicts_oldest_first(self):
        cache = WorkerCache(capacity_mb=100.0)
        cache.insert("old", 60.0)
        cache.insert("new", 60.0)
        assert "old" not in cache
        assert "new" in cache
        assert cache.stats.evictions == 1

    def test_hit_refreshes_recency(self):
        cache = WorkerCache(capacity_mb=100.0)
        cache.insert("a", 40.0)
        cache.insert("b", 40.0)
        cache.lookup("a")  # refresh a
        cache.insert("c", 40.0)  # must evict b, not a
        assert "a" in cache
        assert "b" not in cache

    def test_oversized_item_still_stored(self):
        cache = WorkerCache(capacity_mb=50.0)
        cache.insert("small", 10.0)
        evicted = cache.insert("huge", 200.0)
        assert "huge" in cache
        assert evicted == ["small"]

    def test_eviction_volume_tracked(self):
        cache = WorkerCache(capacity_mb=100.0)
        cache.insert("a", 80.0)
        cache.insert("b", 80.0)
        assert cache.stats.mb_evicted == pytest.approx(80.0)

    def test_used_never_negative(self):
        cache = WorkerCache(capacity_mb=10.0)
        for index in range(20):
            cache.insert(f"r{index}", 7.0)
        assert cache.used_mb >= 0.0
        assert cache.used_mb <= 10.0 or len(cache) == 1


class TestPreload:
    def test_preload_restores_contents(self):
        cache = WorkerCache()
        cache.preload({"r1": 100.0, "r2": 50.0})
        assert cache.peek("r1") and cache.peek("r2")

    def test_preload_does_not_touch_stats(self):
        cache = WorkerCache()
        cache.preload({"r1": 100.0})
        assert cache.stats.mb_downloaded == 0.0
        assert cache.stats.misses == 0

    def test_preload_respects_capacity(self):
        cache = WorkerCache(capacity_mb=100.0)
        cache.preload({"a": 60.0, "b": 60.0, "c": 30.0})
        assert cache.used_mb <= 100.0

    def test_preload_skips_existing(self):
        cache = WorkerCache()
        cache.insert("r1", 100.0)
        cache.preload({"r1": 999.0})
        assert cache.contents()["r1"] == 100.0

    def test_preload_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            WorkerCache().preload({"r": -1.0})

    def test_roundtrip_contents(self):
        cache = WorkerCache()
        cache.insert("x", 10.0)
        cache.insert("y", 20.0)
        clone = WorkerCache()
        clone.preload(cache.contents())
        assert clone.contents() == cache.contents()


class TestClear:
    def test_clear_drops_contents_keeps_stats(self):
        cache = WorkerCache()
        cache.lookup("a")
        cache.insert("a", 5.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.used_mb == 0.0
        assert cache.stats.misses == 1
