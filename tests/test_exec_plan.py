"""Plan capture: the sim's decision stream, frozen and round-trippable."""

import pytest

from repro.cluster.profiles import profile_by_name
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.exec.plan import (
    Decision,
    ExecPlan,
    PlanJob,
    PlanWorker,
    capture_workflow_plan,
)
from repro.schedulers.registry import make_scheduler
from repro.workload.job import Job, JobStream
from repro.workload.msr import TASK_ANALYZER


def tiny_plan() -> ExecPlan:
    workers = (
        PlanWorker(name="a", network_mbps=10.0, rw_mbps=60.0),
        PlanWorker(name="b", network_mbps=10.0, rw_mbps=60.0, preload=(("r1", 5.0),)),
    )
    jobs = (
        PlanJob(job_id="j0", task="t", repo_id="r1", size_mb=5.0),
        PlanJob(job_id="j1", task="t"),
    )
    decisions = (
        Decision(seq=0, job_id="j0", worker="b", at_s=0.0),
        Decision(seq=1, job_id="j1", worker="a", at_s=0.5),
    )
    return ExecPlan(
        scheduler="baseline", seed=1, workers=workers, jobs=jobs, decisions=decisions
    )


class TestRoundTrip:
    def test_plan_survives_dict_round_trip(self):
        plan = tiny_plan()
        assert ExecPlan.from_dict(plan.to_dict()) == plan

    def test_unbounded_cache_encodes_as_null(self):
        worker = PlanWorker(name="a", network_mbps=1.0, rw_mbps=1.0)
        data = worker.to_dict()
        assert data["cache_capacity_mb"] is None
        assert PlanWorker.from_dict(data).cache_capacity_mb == float("inf")

    def test_plan_job_converts_to_real_job_and_back(self):
        job = Job(job_id="j3", task=TASK_ANALYZER, repo_id="r0", size_mb=7.0)
        plan_job = PlanJob.from_job(job, handler="crc")
        assert plan_job.handler == "crc"
        assert plan_job.to_job() == job


class TestValidation:
    def test_decision_for_unknown_job_rejected(self):
        plan = tiny_plan()
        with pytest.raises(ValueError, match="unknown job"):
            ExecPlan(
                scheduler="x",
                seed=0,
                workers=plan.workers,
                jobs=plan.jobs,
                decisions=(Decision(seq=0, job_id="ghost", worker="a", at_s=0.0),),
            )

    def test_decision_for_unknown_worker_rejected(self):
        plan = tiny_plan()
        with pytest.raises(ValueError, match="unknown worker"):
            ExecPlan(
                scheduler="x",
                seed=0,
                workers=plan.workers,
                jobs=plan.jobs,
                decisions=(Decision(seq=0, job_id="j0", worker="ghost", at_s=0.0),),
            )

    def test_per_worker_order_follows_decision_order(self):
        assert tiny_plan().per_worker_order() == {"a": ["j1"], "b": ["j0"]}


def smoke_runtime(scheduler="baseline", n_jobs=6, seed=4):
    jobs = [
        Job(
            job_id=f"j{i}",
            task=TASK_ANALYZER,
            repo_id=f"r{i % 2}",
            size_mb=10.0,
        )
        for i in range(n_jobs)
    ]
    return WorkflowRuntime(
        profile=profile_by_name("all-equal"),
        stream=JobStream.burst(jobs),
        scheduler=make_scheduler(scheduler),
        config=EngineConfig(seed=seed),
    )


class TestCapture:
    def test_every_job_decided_exactly_once_in_a_healthy_run(self):
        plan, result = capture_workflow_plan(smoke_runtime())
        assert result.jobs_completed == 6
        assert len(plan.decisions) == 6
        assert sorted(job.job_id for job in plan.jobs) == [f"j{i}" for i in range(6)]
        # seq is the global decision order, dense from zero.
        assert [d.seq for d in plan.decisions] == list(range(6))
        # Decision times are the sim's, nondecreasing.
        times = [d.at_s for d in plan.decisions]
        assert times == sorted(times)

    def test_capture_snapshots_cold_preload_before_the_run(self):
        plan, _result = capture_workflow_plan(smoke_runtime())
        # The run itself warms the caches; the plan must not see that.
        assert all(worker.preload == () for worker in plan.workers)

    def test_capture_is_deterministic(self):
        plan_a, _ = capture_workflow_plan(smoke_runtime(seed=9))
        plan_b, _ = capture_workflow_plan(smoke_runtime(seed=9))
        assert plan_a == plan_b

    def test_bidding_decisions_are_captured_through_the_same_seam(self):
        plan, result = capture_workflow_plan(smoke_runtime(scheduler="bidding"))
        assert len(plan.decisions) == result.jobs_completed == 6
