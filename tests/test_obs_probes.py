"""ProbeRegistry cadence/retention and the zero-cost-when-off contract."""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.obs import ObsConfig, ProbeRegistry, as_obs_config, busy_fraction
from repro.schedulers.registry import make_scheduler
from repro.sim import Simulator
from repro.workload.job import Job, JobStream
from repro.workload.msr import TASK_ANALYZER


def burst_stream(n=6, size=10.0):
    return JobStream.burst(
        [
            Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=size)
            for i in range(n)
        ]
    )


def make_runtime(obs=True, **config_kwargs):
    return WorkflowRuntime(
        profile=make_profile(make_spec("w1"), make_spec("w2")),
        stream=burst_stream(),
        scheduler=make_scheduler("bidding"),
        config=EngineConfig(seed=0, obs=obs, **config_kwargs),
    )


class TestProbeRegistry:
    def test_samples_on_cadence(self):
        sim = Simulator()
        registry = ProbeRegistry(sim, interval_s=2.0)
        ticks = []
        registry.register("clock", lambda: sim.now, unit="s")
        registry.start()
        sim.run(until=7.0)
        series = registry.series("clock")
        assert [time for time, _ in series] == [0.0, 2.0, 4.0, 6.0]
        assert [value for _, value in series] == [0.0, 2.0, 4.0, 6.0]
        assert ticks == []  # nothing else ran

    def test_retention_ring_bound(self):
        sim = Simulator()
        registry = ProbeRegistry(sim, interval_s=1.0, retention=5)
        registry.register("count", lambda: 1.0)
        registry.start()
        sim.run(until=20.0)
        samples = registry.series("count")
        assert len(samples) == 5  # bounded, newest kept
        assert samples[-1][0] == 20.0

    def test_stop_halts_sampling(self):
        sim = Simulator()
        registry = ProbeRegistry(sim, interval_s=1.0)
        registry.register("x", lambda: 0.0)
        registry.start()
        sim.run(until=3.0)
        registry.stop()
        before = len(registry.series("x"))
        sim.run(until=10.0)
        assert len(registry.series("x")) == before

    def test_reregister_keeps_history(self):
        sim = Simulator()
        registry = ProbeRegistry(sim, interval_s=1.0)
        registry.register("gauge", lambda: 1.0)
        registry.start()
        sim.run(until=2.0)
        registry.register("gauge", lambda: 9.0)  # e.g. a restarted worker
        sim.run(until=4.0)
        values = [value for _, value in registry.series("gauge")]
        assert values == [1.0, 1.0, 1.0, 9.0, 9.0]

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ProbeRegistry(sim, interval_s=0.0)
        with pytest.raises(ValueError):
            ProbeRegistry(sim, retention=0)

    def test_busy_fraction(self):
        assert busy_fraction([]) is None
        assert busy_fraction([(0.0, 1.0), (1.0, 0.0)]) == 0.5


class TestObsConfig:
    def test_normalisation(self):
        assert as_obs_config(None) is None
        assert as_obs_config(False) is None
        assert as_obs_config(True) == ObsConfig()
        cfg = ObsConfig(probe_interval_s=0.5, retention=16)
        assert as_obs_config(cfg) is cfg
        with pytest.raises(TypeError):
            as_obs_config("yes")

    def test_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(probe_interval_s=0.0)
        with pytest.raises(ValueError):
            ObsConfig(retention=0)


class TestRuntimeProbes:
    def test_standard_probes_registered_and_sampled(self):
        runtime = make_runtime(obs=ObsConfig(probe_interval_s=1.0))
        runtime.run()
        names = runtime.obs.probes.names()
        for expected in (
            "master.outstanding",
            "fleet.active",
            "fleet.busy",
            "links.busy",
            "worker.w1.busy",
            "worker.w1.queue",
            "worker.w2.busy",
            "worker.w2.queue",
        ):
            assert expected in names, names
        # Every series has samples from start through the final flush.
        for name in names:
            samples = runtime.obs.probes.series(name)
            assert samples, name
            assert samples[0][0] == 0.0

    def test_worker_busy_fraction_positive(self):
        runtime = make_runtime(obs=True)
        runtime.run()
        fractions = [
            busy_fraction(runtime.obs.probes.series(f"worker.{name}.busy"))
            for name in ("w1", "w2")
        ]
        assert any(fraction > 0 for fraction in fractions)


class TestZeroCostOff:
    def test_obs_off_leaves_no_recorder_anywhere(self):
        runtime = make_runtime(obs=False)
        assert runtime.obs is None
        assert runtime.master.obs is None
        assert runtime.topology.broker.obs is None
        for worker in runtime.workers.values():
            assert worker.obs is None
        runtime.run()

    def test_obs_off_messages_carry_no_ctx(self):
        runtime = make_runtime(obs=False)
        seen = []
        original = runtime.master.send_to_worker

        def spy(worker, message):
            seen.append(message)
            original(worker, message)

        runtime.master.send_to_worker = spy
        runtime.run()
        from repro.engine.messages import Assignment

        assignments = [m for m in seen if isinstance(m, Assignment)]
        assert assignments
        assert all(m.ctx is None for m in assignments)

    def test_obs_on_metrics_bit_identical_to_off(self):
        plain = make_runtime(obs=False).run()
        observed = make_runtime(obs=True).run()
        assert observed.makespan_s == plain.makespan_s
        assert observed.cache_misses == plain.cache_misses
        assert observed.cache_hits == plain.cache_hits
        assert observed.data_load_mb == plain.data_load_mb
