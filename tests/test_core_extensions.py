"""Tests for the future-work extensions: fast local close + adaptive bids."""

import pytest

from conftest import make_profile, make_spec
from repro.core.adaptive import BidCorrector
from repro.core.bidding import make_bidding_policy
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def quiet_config(seed=0, **overrides):
    defaults = dict(
        seed=seed,
        noise_kind="none",
        noise_params={},
        topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def repeated_stream(n=10, repo="hot", size=50.0, gap=30.0):
    return JobStream(
        arrivals=[
            JobArrival(
                at=float(i) * gap,
                job=Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=repo, size_mb=size),
            )
            for i in range(n)
        ]
    )


def build_runtime(stream, caches=None, **policy_kwargs):
    policy_kwargs.setdefault("bid_compute_s", 0.5)
    profile = make_profile(make_spec("w1"), make_spec("w2"), make_spec("w3"))
    return WorkflowRuntime(
        profile=profile,
        stream=stream,
        scheduler=make_bidding_policy(**policy_kwargs),
        config=quiet_config(),
        initial_caches=caches,
    )


class TestBidCorrector:
    def test_starts_unbiased(self):
        assert BidCorrector().factor == 1.0

    def test_learns_underestimation(self):
        corrector = BidCorrector(alpha=0.5)
        for _ in range(10):
            corrector.observe(estimated_s=10.0, actual_s=20.0)
        assert corrector.factor > 1.5
        assert corrector.correct(10.0) > 15.0

    def test_learns_overestimation(self):
        corrector = BidCorrector(alpha=0.5)
        for _ in range(10):
            corrector.observe(estimated_s=10.0, actual_s=5.0)
        assert corrector.factor < 0.75

    def test_clamped_against_outliers(self):
        corrector = BidCorrector(alpha=1.0, clamp=(0.5, 2.0))
        corrector.observe(estimated_s=1.0, actual_s=1000.0)
        assert corrector.factor == 2.0

    def test_zero_estimate_skipped(self):
        corrector = BidCorrector()
        corrector.observe(estimated_s=0.0, actual_s=5.0)
        assert corrector.observations == 0
        assert corrector.factor == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BidCorrector(alpha=0.0)
        with pytest.raises(ValueError):
            BidCorrector(clamp=(2.0, 0.5))
        with pytest.raises(ValueError):
            BidCorrector().correct(-1.0)


class TestAdaptiveBidding:
    def test_adaptive_run_completes(self):
        runtime = build_runtime(repeated_stream(), adaptive=True)
        result = runtime.run()
        assert result.jobs_completed == 10

    def test_corrector_learns_during_run(self):
        runtime = build_runtime(
            repeated_stream(n=12),
            adaptive=True,
        )
        # Realised speeds are half nominal: estimates systematically low.
        runtime.config = runtime.config  # noqa: B018 - readability anchor
        runtime.run()
        correctors = [
            worker.policy.corrector
            for worker in runtime.workers.values()
            if worker.policy.corrector is not None and worker.policy.corrector.observations
        ]
        assert correctors, "at least one worker should have observed jobs"


class TestFastLocalClose:
    def test_fast_close_reduces_contest_time_on_repetitive_warm_jobs(self):
        caches = {"w1": {"hot": 50.0}}
        slow = build_runtime(repeated_stream(), caches=caches, fast_local_close=False)
        slow_result = slow.run()
        fast = build_runtime(repeated_stream(), caches=caches, fast_local_close=True)
        fast_result = fast.run()
        assert fast_result.contest_seconds < slow_result.contest_seconds
        assert fast.metrics.contests_closed_fast > 0

    def test_fast_close_preserves_locality(self):
        caches = {"w1": {"hot": 50.0}}
        runtime = build_runtime(repeated_stream(), caches=caches, fast_local_close=True)
        result = runtime.run()
        # The idle holder keeps winning: no redundant clones.
        assert result.cache_misses == 0
        assert all(w == "w1" for w in runtime.master.assignments.values())

    def test_fast_close_never_fires_on_cold_jobs(self):
        stream = JobStream(
            arrivals=[
                JobArrival(
                    at=float(i) * 30.0,
                    job=Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=50.0),
                )
                for i in range(5)
            ]
        )
        runtime = build_runtime(stream, fast_local_close=True)
        runtime.run()
        assert runtime.metrics.contests_closed_fast == 0
