"""Re-record ``golden_perfetto.json`` (see test_obs_export).

The fixture pins the exact Perfetto ``trace_event`` JSON emitted for a
fixed-seed two-worker run, so any change to span construction, track
layout or exporter formatting is a *deliberate*, reviewed diff.  Run
only when such a change is intended::

    PYTHONPATH=src python tests/regen_golden_perfetto.py

CI-style drift gate (regenerates into memory, fails on mismatch)::

    PYTHONPATH=src python tests/regen_golden_perfetto.py --check

Keep the scenario below in lockstep with ``test_obs_export.py``.
"""

import json
import sys
from pathlib import Path

from repro.cluster.profiles import WorkerProfile
from repro.cluster.worker_spec import WorkerSpec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.obs import ObsConfig, build_spans, perfetto_trace
from repro.schedulers.registry import make_scheduler
from repro.workload.job import Job, JobStream
from repro.workload.msr import TASK_ANALYZER

SEED = 3
SCHEDULER = "bidding"


def golden_runtime() -> WorkflowRuntime:
    """The pinned scenario: 2 unequal workers, 6 burst jobs, seed 3."""
    profile = WorkerProfile(
        "golden-2w",
        (
            WorkerSpec(name="w1", network_mbps=50.0, rw_mbps=100.0, link_latency=0.0),
            WorkerSpec(name="w2", network_mbps=40.0, rw_mbps=80.0, link_latency=0.0),
        ),
    )
    jobs = [
        Job(
            job_id=f"j{index}",
            task=TASK_ANALYZER,
            repo_id=f"r{index % 3}",
            size_mb=20.0 + 5.0 * (index % 3),
        )
        for index in range(8)
    ]
    return WorkflowRuntime(
        profile=profile,
        stream=JobStream.burst(jobs),
        scheduler=make_scheduler(SCHEDULER),
        config=EngineConfig(
            seed=SEED, trace=True, obs=ObsConfig(probe_interval_s=5.0)
        ),
    )


def record() -> dict:
    runtime = golden_runtime()
    runtime.run()
    trace = runtime.metrics.trace
    return perfetto_trace(
        trace,
        spans=build_spans(trace),
        probes=runtime.obs.probes,
        flows=runtime.obs.flows,
        label="golden",
    )


def regenerate(path: Path) -> None:
    path.write_text(
        json.dumps(record(), indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"golden Perfetto fixture re-recorded at {path}")


def check(path: Path) -> int:
    """Fail (exit 1) when the committed fixture drifts from the code."""
    committed = json.loads(path.read_text(encoding="utf-8"))
    current = record()
    if committed == current:
        print(f"golden Perfetto fixture at {path} matches the current code")
        return 0
    was, now = committed["traceEvents"], current["traceEvents"]
    print(
        f"golden Perfetto fixture at {path} DRIFTED: "
        f"{len(was)} committed events vs {len(now)} current"
    )
    for index, (a, b) in enumerate(zip(was, now)):
        if a != b:
            print(f"  first differing event [{index}]:")
            print(f"    committed: {json.dumps(a, sort_keys=True)}")
            print(f"    current:   {json.dumps(b, sort_keys=True)}")
            break
    print(
        "If the exporter change is deliberate, re-record with\n"
        "  PYTHONPATH=src python tests/regen_golden_perfetto.py"
    )
    return 1


if __name__ == "__main__":
    fixture = Path(__file__).parent / "golden_perfetto.json"
    if "--check" in sys.argv[1:]:
        sys.exit(check(fixture))
    regenerate(fixture)
