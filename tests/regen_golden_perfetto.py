"""Thin wrapper: ``golden_perfetto.json`` now lives behind the unified
golden tooling in :mod:`repro.experiments.golden`.

Prefer the CLI entry point (the one CI gates on)::

    PYTHONPATH=src python -m repro golden perfetto           # re-record
    PYTHONPATH=src python -m repro golden perfetto --check   # drift gate

This script remains for muscle memory and for tests importing its
``golden_runtime`` / ``record`` (``test_obs_export.py`` pins the exact
scenario through them).
"""

import sys

from repro.experiments.golden import golden_runtime, record_perfetto as record  # noqa: F401
from repro.experiments.golden import run

if __name__ == "__main__":
    sys.exit(run(["perfetto"], do_check="--check" in sys.argv[1:]))
