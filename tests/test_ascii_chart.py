"""Unit coverage for the terminal chart helpers (satellite of repro.obs)."""

import pytest

from repro.metrics.ascii_chart import bar_chart, grouped_bar_chart, sparkline


class TestSparkline:
    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_negative_values_raise(self):
        with pytest.raises(ValueError):
            sparkline([1.0, -0.5])

    def test_zero_width_raises(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)

    def test_all_zero_series_renders_floor(self):
        assert sparkline([0.0, 0.0, 0.0]) == "▁▁▁"

    def test_zero_max_value_renders_floor(self):
        assert sparkline([1.0, 2.0], max_value=0.0) == "▁▁"

    def test_monotone_ramp_uses_full_range(self):
        chart = sparkline([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        assert chart == "▁▂▃▄▅▆▇█"

    def test_unicode_width_is_one_cell_per_sample(self):
        values = [0.0, 3.0, 7.0, 1.0]
        chart = sparkline(values)
        assert len(chart) == len(values)
        assert all(block in "▁▂▃▄▅▆▇█" for block in chart)

    def test_resampling_to_width(self):
        values = list(range(100))
        chart = sparkline(values, width=10)
        assert len(chart) == 10
        assert chart[0] == "▁" and chart[-1] == "█"

    def test_width_wider_than_series_keeps_length(self):
        assert len(sparkline([1.0, 2.0], width=50)) == 2

    def test_max_value_pins_scale(self):
        # With the top pinned far above the data, everything stays low.
        chart = sparkline([1.0, 1.0], max_value=100.0)
        assert chart == "▁▁"

    def test_values_above_max_clamp(self):
        assert sparkline([5.0, 50.0], max_value=10.0)[-1] == "█"


class TestBarChart:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bar_chart([])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])

    def test_zero_values_render_without_bars(self):
        text = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "a" in text and "b" in text
        assert "█" not in text

    def test_labels_aligned(self):
        text = bar_chart([("short", 1.0), ("a-much-longer-label", 2.0)])
        lines = text.splitlines()
        bars_at = [line.index(" ") for line in lines]
        assert "short".ljust(len("a-much-longer-label")) in lines[0]
        assert len(bars_at) == 2


class TestGroupedBarChart:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            grouped_bar_chart([])
        with pytest.raises(ValueError):
            grouped_bar_chart([("g", [])])

    def test_global_scaling(self):
        text = grouped_bar_chart(
            [("g1", [("a", 10.0)]), ("g2", [("b", 40.0)])], width=4
        )
        lines = text.splitlines()
        bar_a = lines[1].count("█")
        bar_b = lines[3].count("█")
        assert bar_b == 4 and bar_a == 1
