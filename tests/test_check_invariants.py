"""The invariant registry and the live monitor (``repro.check``).

Three layers of assurance:

* registry sanity -- every law is named, documented and addressable
  from :class:`CheckConfig.disable`;
* clean-run coverage -- monitors enabled across every scheduler, on
  healthy and faulted cells, must observe nothing (and must actually
  have performed checks);
* detection -- the planted bugs of :mod:`repro.check.planted` and
  hand-fed unit violations must raise :class:`InvariantViolation`
  naming the broken law, with the trace slice attached.
"""

import pytest

from conftest import make_profile, make_spec
from repro.check import (
    INVARIANTS,
    CheckConfig,
    InvariantMonitor,
    InvariantViolation,
)
from repro.check.planted import (
    make_double_allocate_policy,
    plant_buggy_migrator,
    plant_overdelivering_origin,
)
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.faults import FaultPlan, RecoveryConfig, WorkerCrash
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER

FAMILIES = {
    "conservation": (
        "exactly-once-allocation",
        "at-most-once-completion",
        "completion-conservation",
        "completion-implies-submission",
        "cache-hit-requires-fetch",
        "pipe-no-overdelivery",
        "service-conservation",
        "migration-conservation",
        "swap-completeness",
    ),
    "ordering": (
        "no-early-delivery",
        "fifo-per-pair",
        "delivery-requires-publish",
        "start-consumes-enqueue",
    ),
    "contest": (
        "contest-per-permit",
        "bid-after-announce",
        "contest-window-bounded",
        "winner-among-bidders",
        "assignment-matches-winner",
    ),
}


def stream_of(n=10, size=40.0, repos=4):
    return JobStream(
        arrivals=[
            JobArrival(
                at=float(i) * 0.4,
                job=Job(
                    job_id=f"j{i}",
                    task=TASK_ANALYZER,
                    repo_id=f"r{i % repos}",
                    size_mb=size,
                ),
            )
            for i in range(n)
        ]
    )


def build_runtime(
    scheduler=None, check=True, faults=None, shared_origin_mbps=None, reconfig=None
):
    policy = (
        scheduler
        if not isinstance(scheduler, str)
        else make_scheduler(scheduler)
    )
    return WorkflowRuntime(
        profile=make_profile(make_spec("w1"), make_spec("w2"), make_spec("w3")),
        stream=stream_of(),
        scheduler=policy or make_scheduler("bidding"),
        config=EngineConfig(
            seed=5,
            noise_kind="none",
            noise_params={},
            topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
            shared_origin_mbps=shared_origin_mbps,
            check=check,
            trace=True,
            max_sim_time=5000.0,
        ),
        faults=faults,
        reconfig=reconfig,
    )


class TestRegistry:
    def test_every_family_member_is_registered(self):
        for family, names in FAMILIES.items():
            for name in names:
                assert name in INVARIANTS, f"{family} law {name} missing"

    def test_registry_is_exactly_the_families(self):
        expected = {name for names in FAMILIES.values() for name in names}
        assert set(INVARIANTS) == expected

    def test_laws_are_documented(self):
        for name, invariant in INVARIANTS.items():
            assert invariant.name == name
            assert invariant.law.strip()
            assert invariant.description.strip()

    def test_disable_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            CheckConfig(disable=("no-such-law",))


class TestCleanRuns:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_monitors_observe_nothing_on_healthy_runs(self, scheduler):
        runtime = build_runtime(scheduler)
        result = runtime.run()
        assert result.jobs_completed == 10
        assert runtime.monitor is not None
        assert runtime.monitor.checks > 0

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_monitors_observe_nothing_on_faulted_runs(self, scheduler):
        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=2.0, worker="w1", restart_after_s=6.0),),
            recovery=RecoveryConfig(max_redispatches=5, backoff_base_s=0.1),
        )
        runtime = build_runtime(scheduler, faults=plan)
        result = runtime.run()
        assert result.jobs_completed == 10
        assert result.failed_jobs == ()

    def test_monitors_off_is_the_default_and_absent(self):
        runtime = build_runtime(check=False)
        assert runtime.monitor is None
        assert runtime.run().jobs_completed == 10

    @pytest.mark.parametrize("workload", ("80%_small", "80%_large"))
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_monitored_matrix_on_real_workloads(self, scheduler, workload):
        # The acceptance matrix: every scheduler on both headline
        # workloads, plus a faulted cell, all under live monitors.
        from repro.experiments.runner import CellSpec, run_cell

        results = run_cell(
            CellSpec(
                scheduler=scheduler,
                workload=workload,
                profile="fast-slow",
                seed=7,
                iterations=1,
                engine_overrides=(("check", True),),
            )
        )
        assert results[0].jobs_completed > 0

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_monitored_faulted_cell_on_real_workload(self, scheduler):
        from repro.experiments.runner import CellSpec, run_cell

        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=20.0, restart_after_s=30.0),),
            recovery=RecoveryConfig(max_redispatches=5, backoff_base_s=0.5),
        )
        results = run_cell(
            CellSpec(
                scheduler=scheduler,
                workload="80%_small",
                profile="fast-slow",
                seed=7,
                iterations=1,
                engine_overrides=(("check", True),),
                faults=plan,
            )
        )
        assert results[0].jobs_completed > 0
        assert results[0].failed_jobs == ()


class TestPlantedBugs:
    def test_double_allocating_scheduler_is_caught(self):
        runtime = build_runtime(make_double_allocate_policy())
        with pytest.raises(InvariantViolation) as caught:
            runtime.run()
        assert caught.value.invariant.name == "exactly-once-allocation"
        # The violation carries its trace slice for diagnosis.
        assert caught.value.events

    def test_overdelivering_pipe_is_caught(self):
        runtime = build_runtime("bidding", shared_origin_mbps=20.0)
        plant_overdelivering_origin(runtime)
        with pytest.raises(InvariantViolation) as caught:
            runtime.run()
        assert caught.value.invariant.name == "pipe-no-overdelivery"

    def test_planted_pipe_runs_silently_without_monitors(self):
        # check=False must really disable everything: the over-delivering
        # pipe completes the run unchallenged (only the bandwidth
        # -conservation law can see it), just impossibly fast.
        runtime = build_runtime("bidding", check=False, shared_origin_mbps=20.0)
        plant_overdelivering_origin(runtime)
        result = runtime.run()
        assert runtime.monitor is None
        assert result.jobs_completed == 10

    def test_buggy_migrator_is_caught(self):
        # The job-dropping migrator loses the first checkpointed job;
        # the conservation law must fire when the migration settles.
        from repro.reconfig import JobMigration, ReconfigPlan

        plan = ReconfigPlan(
            migrations=(JobMigration(at_s=1.0, max_jobs=2, include_running=True),)
        )
        runtime = build_runtime("bidding", reconfig=plan)
        plant_buggy_migrator(runtime)
        with pytest.raises(InvariantViolation) as caught:
            runtime.run()
        assert caught.value.invariant.name == "migration-conservation"
        assert caught.value.events

    def test_double_allocate_without_monitors_escapes_to_the_coarse_guard(self):
        # Without the monitor the double allocation survives until both
        # executions finish, where the master's last-resort duplicate
        # -completion guard finally trips -- far from the root cause,
        # which is exactly why the assignment-time law exists.
        runtime = build_runtime(make_double_allocate_policy(), check=False)
        with pytest.raises(RuntimeError, match="completed more times"):
            runtime.run()


class TestUnitViolations:
    def test_delivery_requires_publish(self):
        monitor = InvariantMonitor()
        message = object()
        with pytest.raises(InvariantViolation) as caught:
            monitor.on_deliver("topic/x", "w1", message, now=1.0)
        assert caught.value.invariant.name == "delivery-requires-publish"

    def test_fifo_per_pair_rejects_reordering(self):
        monitor = InvariantMonitor()
        first, second = object(), object()
        monitor.on_publish("topic/x", first, sender="m", now=0.0)
        monitor.on_publish("topic/x", second, sender="m", now=0.1)
        monitor.on_deliver("topic/x", "w1", second, now=0.2)
        with pytest.raises(InvariantViolation) as caught:
            monitor.on_deliver("topic/x", "w1", first, now=0.3)
        assert caught.value.invariant.name == "fifo-per-pair"

    def test_no_early_delivery(self):
        monitor = InvariantMonitor()
        message = object()
        monitor.on_publish("topic/x", message, sender="m", now=5.0)
        with pytest.raises(InvariantViolation) as caught:
            monitor.on_deliver("topic/x", "w1", message, now=4.0)
        assert caught.value.invariant.name == "no-early-delivery"

    def test_pipe_overdelivery_bound(self):
        monitor = InvariantMonitor()
        # 100 MB in 1 s through a 10 MB/s pipe is physically impossible.
        with pytest.raises(InvariantViolation) as caught:
            monitor.on_transfer_complete(10.0, 100.0, 1.0, now=1.0)
        assert caught.value.invariant.name == "pipe-no-overdelivery"

    def test_migration_settle_with_dangling_job_is_loss(self):
        monitor = InvariantMonitor()
        monitor.on_migration_checkpoint("j1", "w1", now=1.0)
        monitor.on_migration_rebind("j1", "w1", "w2", now=1.5)
        monitor.on_migration_checkpoint("j2", "w1", now=2.0)  # never rebound
        with pytest.raises(InvariantViolation) as caught:
            monitor.on_migration_settled(now=3.0)
        assert caught.value.invariant.name == "migration-conservation"
        assert "j2" in str(caught.value)

    def test_migration_rebind_without_checkpoint_is_duplication(self):
        monitor = InvariantMonitor()
        with pytest.raises(InvariantViolation) as caught:
            monitor.on_migration_rebind("j1", "w1", "w2", now=1.0)
        assert caught.value.invariant.name == "migration-conservation"

    def test_migration_dangling_at_end_of_run_is_loss(self):
        monitor = InvariantMonitor()
        monitor.on_migration_checkpoint("j1", "w1", now=1.0)
        with pytest.raises(InvariantViolation) as caught:
            monitor.final_check()
        assert caught.value.invariant.name == "migration-conservation"

    def test_clean_migration_satisfies_conservation(self):
        monitor = InvariantMonitor()
        monitor.on_migration_checkpoint("j1", "w1", now=1.0)
        monitor.on_migration_rebind("j1", "w1", "w2", now=1.5)
        monitor.on_migration_settled(now=2.0)  # no raise
        monitor.final_check()  # no raise

    def test_swap_import_missing_jobs_is_incomplete(self):
        monitor = InvariantMonitor()
        monitor.on_swap_export(["j1", "j2", "j3"], "bidding", now=5.0)
        with pytest.raises(InvariantViolation) as caught:
            monitor.on_swap_import(["j1", "j3"], "baseline", now=5.0)
        assert caught.value.invariant.name == "swap-completeness"
        assert "j2" in str(caught.value)

    def test_swap_import_covering_export_is_complete(self):
        monitor = InvariantMonitor()
        monitor.on_swap_export(["j1", "j2"], "bidding", now=5.0)
        monitor.on_swap_import(["j1", "j2"], "baseline", now=5.0)  # no raise

    def test_disable_silences_exactly_the_named_law(self):
        monitor = InvariantMonitor(CheckConfig(disable=("delivery-requires-publish",)))
        monitor.on_deliver("topic/x", "w1", object(), now=1.0)  # no raise
        with pytest.raises(InvariantViolation):
            monitor.on_transfer_complete(10.0, 100.0, 1.0, now=1.0)

    def test_engine_config_accepts_check_config(self):
        # EngineConfig(check=CheckConfig(...)) routes fine-grained
        # configuration into the monitor.
        runtime = WorkflowRuntime(
            profile=make_profile(make_spec("w1"), make_spec("w2")),
            stream=stream_of(4),
            scheduler=make_scheduler("bidding"),
            config=EngineConfig(
                seed=5,
                noise_kind="none",
                noise_params={},
                check=CheckConfig(recent_events=7),
            ),
        )
        assert runtime.monitor is not None
        assert runtime.monitor.events.maxlen == 7
        assert runtime.run().jobs_completed == 4
