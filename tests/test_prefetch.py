"""Tests for the download-prefetch extension."""

import pytest

from conftest import make_profile, make_spec, make_worker
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import make_scheduler
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def analysis_job(job_id, repo, size=100.0):
    return Job(job_id=job_id, task=TASK_ANALYZER, repo_id=repo, size_mb=size)


def quiet_config(prefetch=True, seed=0):
    return EngineConfig(
        seed=seed,
        noise_kind="none",
        noise_params={},
        topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
        prefetch=prefetch,
    )


class TestPrefetcherUnit:
    def test_overlaps_download_with_processing(self, sim):
        """Two queued jobs: job2's download runs during job1's scan, so
        total time < serial download+process of both."""
        worker = make_worker(sim, make_spec(network=10.0, rw=10.0))
        worker.prefetch = True
        worker.start()
        # Each job: download 10 s, process 10 s.  Serial: 40 s total.
        worker.enqueue(analysis_job("j1", "r1"))
        worker.enqueue(analysis_job("j2", "r2"))
        sim.run()
        # Prefetch overlaps j2's download with j1's processing: 30 s.
        assert sim.now == pytest.approx(30.0)

    def test_no_prefetch_is_serial(self, sim):
        worker = make_worker(sim, make_spec(network=10.0, rw=10.0))
        worker.start()
        worker.enqueue(analysis_job("j1", "r1"))
        worker.enqueue(analysis_job("j2", "r2"))
        sim.run()
        assert sim.now == pytest.approx(40.0)

    def test_accounting_identity_preserved(self, sim):
        worker = make_worker(sim, make_spec(network=10.0, rw=10.0))
        worker.prefetch = True
        worker.start()
        for index in range(4):
            worker.enqueue(analysis_job(f"j{index}", f"r{index}", size=50.0))
        sim.run()
        metrics = worker.metrics
        assert metrics.total_cache_misses == 4
        assert metrics.total_cache_hits == 0
        assert metrics.total_mb_downloaded == pytest.approx(200.0)

    def test_shared_repo_downloaded_once(self, sim):
        worker = make_worker(sim, make_spec(network=10.0, rw=10.0))
        worker.prefetch = True
        worker.start()
        for index in range(3):
            worker.enqueue(analysis_job(f"j{index}", "hot", size=50.0))
        sim.run()
        metrics = worker.metrics
        assert metrics.total_cache_misses == 1
        assert metrics.total_cache_hits == 2
        assert metrics.total_mb_downloaded == pytest.approx(50.0)
        assert worker.machine.link.transfer_count == 1

    def test_kill_stops_prefetcher(self, sim):
        worker = make_worker(sim, make_spec(network=10.0, rw=10.0))
        worker.prefetch = True
        worker.start()
        worker.enqueue(analysis_job("j1", "r1"))
        worker.enqueue(analysis_job("j2", "r2"))
        sim.timeout(1.0).add_callback(lambda _e: worker.kill())
        sim.run()
        assert not worker.alive
        assert worker._prefetch_proc is not None
        assert not worker._prefetch_proc.is_alive


class TestPrefetchEndToEnd:
    def small_stream(self):
        return JobStream(
            arrivals=[
                JobArrival(at=0.0, job=analysis_job(f"j{i}", f"r{i}", size=100.0))
                for i in range(10)
            ]
        )

    def test_bidding_faster_with_prefetch(self):
        profile = make_profile(make_spec("w1"), make_spec("w2"))
        times = {}
        for prefetch in (False, True):
            runtime = WorkflowRuntime(
                profile=profile,
                stream=self.small_stream(),
                scheduler=make_scheduler("bidding", bid_compute_s=0.0),
                config=quiet_config(prefetch=prefetch),
            )
            times[prefetch] = runtime.run().makespan_s
        assert times[True] < times[False]

    def test_metrics_identical_misses(self):
        """Prefetching changes *when* downloads happen, not *whether*."""
        profile = make_profile(make_spec("w1"), make_spec("w2"))
        misses = {}
        for prefetch in (False, True):
            runtime = WorkflowRuntime(
                profile=profile,
                stream=self.small_stream(),
                scheduler=make_scheduler("bidding", bid_compute_s=0.0),
                config=quiet_config(prefetch=prefetch),
            )
            result = runtime.run()
            misses[prefetch] = result.cache_misses
            assert result.cache_hits + result.cache_misses == 10
        assert misses[True] == misses[False] == 10

    def test_baseline_unaffected(self):
        """Pull-based workers hold one job at a time: nothing to prefetch."""
        profile = make_profile(make_spec("w1"), make_spec("w2"))
        times = {}
        for prefetch in (False, True):
            runtime = WorkflowRuntime(
                profile=profile,
                stream=self.small_stream(),
                scheduler=make_scheduler("baseline"),
                config=quiet_config(prefetch=prefetch),
            )
            times[prefetch] = runtime.run().makespan_s
        assert times[True] == pytest.approx(times[False])
