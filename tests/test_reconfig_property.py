"""Stateful property tests for live reconfiguration under churn.

A :class:`RuleBasedStateMachine` assembles a random interleaving of
churn events -- job migrations, scheduler hot-swaps, worker crashes,
elastic joins and retirements -- then executes the whole timeline on a
live :class:`ServiceRuntime` with invariant monitors on and checks the
outcome against a reference model:

* **conservation** -- every admitted job is accounted for exactly:
  ``admitted == completed + failed``, and nothing is left on the
  master's books;
* **at-most-once** -- no job completes twice, whatever was migrated,
  swapped or crashed under it.

The machine draws the initial scheduler too, so interleavings are
explored across policies; :func:`test_full_churn_all_schedulers` then
pins one maximal interleaving (every event kind at once) and runs it
on *every* registered scheduler, guaranteeing all eight see the
battery every time the suite runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.cluster.profiles import all_equal
from repro.engine.runtime import EngineConfig
from repro.faults import FaultPlan, RecoveryConfig, WorkerCrash
from repro.reconfig import JobMigration, ReconfigPlan, SchedulerSwap
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.serve import (
    AdmissionConfig,
    PoissonArrivals,
    ServiceConfig,
    ServiceRuntime,
)

DURATION_S = 40.0
#: Churn stops well before the intake closes so drains can finish.
LAST_EVENT_S = 30.0


def run_churn(
    scheduler: str,
    migrations=(),
    swaps=(),
    crashes=(),
    joins=(),
    retires=(),
    seed: int = 11,
):
    """Execute one churn timeline on a live service; return the runtime
    and its report.  ``joins``/``retires`` are event times; crashes are
    ``(at_s, restart_after_s)`` pairs; migrations/swaps are plan entries.
    """
    plan = ReconfigPlan(migrations=tuple(migrations), swaps=tuple(swaps))
    faults = None
    if crashes:
        faults = FaultPlan(
            crashes=tuple(
                WorkerCrash(at_s=at, restart_after_s=restart) for at, restart in crashes
            ),
            recovery=RecoveryConfig(redispatch_timeout_s=60.0),
        )
    runtime = ServiceRuntime(
        profile=all_equal(),
        scheduler=make_scheduler(scheduler),
        arrivals=PoissonArrivals(rate=1.5),
        admission_config=AdmissionConfig(queue_cap=32),
        service_config=ServiceConfig(duration_s=DURATION_S),
        config=EngineConfig(seed=seed, check=True, trace=True),
        faults=faults,
        reconfig=None if plan.is_trivial else plan,
    )
    fleet_events = sorted(
        [(at, "join") for at in joins] + [(at, "retire") for at in retires]
    )
    if fleet_events:

        def churn():
            now = 0.0
            for at, kind in fleet_events:
                if at > now:
                    yield runtime.sim.timeout(at - now)
                    now = at
                if kind == "join":
                    runtime.scale_up()
                elif len(runtime.master.active_workers) > 1:
                    runtime.scale_down()

        runtime.sim.process(churn(), name="fleet-churn")
    return runtime, runtime.run()


def assert_reference_model(runtime, report) -> None:
    """The laws any churn timeline must leave intact."""
    # Conservation: the service accounted for every admitted job.
    assert report.admitted == report.completed + report.failed
    assert runtime.master.outstanding == 0
    # At-most-once: no job finished twice, whatever moved underneath it.
    completions: dict[str, int] = {}
    submitted = set()
    for event in runtime.metrics.trace:
        if event.kind == "submitted":
            submitted.add(event.job_id)
        elif event.kind == "completed":
            completions[event.job_id] = completions.get(event.job_id, 0) + 1
    duplicated = {job_id for job_id, count in completions.items() if count > 1}
    assert not duplicated, f"jobs completed more than once: {sorted(duplicated)}"
    assert set(completions) <= submitted
    # The monitors really rode along (migration/swap laws included).
    assert runtime.monitor is not None
    assert runtime.monitor.checks > 0


class ReconfigChurnModel(RuleBasedStateMachine):
    """Random migrate/swap/crash/join/retire interleavings vs the model.

    Rules append timed events to a growing timeline (time only moves
    forward, so every generated interleaving is physically realisable);
    teardown executes the timeline once and checks the reference model.
    Shrinking therefore minimises the *event sequence* that breaks a
    law, which is exactly the reproducer a human wants.
    """

    def __init__(self):
        super().__init__()
        self.scheduler = "bidding"
        self.clock = 2.0
        self.migrations: list[JobMigration] = []
        self.swaps: list[SchedulerSwap] = []
        self.crashes: list[tuple[float, float]] = []
        self.joins: list[float] = []
        self.retires: list[float] = []

    gaps = st.floats(min_value=0.5, max_value=4.0, allow_nan=False)

    def _advance(self, gap: float) -> float:
        self.clock = min(self.clock + gap, LAST_EVENT_S)
        return self.clock

    @initialize(scheduler=st.sampled_from(sorted(SCHEDULERS)))
    def pick_scheduler(self, scheduler):
        self.scheduler = scheduler

    @rule(
        gap=gaps,
        max_jobs=st.integers(min_value=1, max_value=3),
        include_running=st.booleans(),
    )
    def migrate(self, gap, max_jobs, include_running):
        self.migrations.append(
            JobMigration(
                at_s=self._advance(gap),
                max_jobs=max_jobs,
                include_running=include_running,
            )
        )

    @rule(gap=gaps, to=st.sampled_from(sorted(SCHEDULERS)))
    def swap(self, gap, to):
        self.swaps.append(SchedulerSwap(at_s=self._advance(gap), scheduler=to))

    @rule(gap=gaps, restart=st.floats(min_value=4.0, max_value=10.0))
    def crash(self, gap, restart):
        self.crashes.append((self._advance(gap), restart))

    @rule(gap=gaps)
    def join(self, gap):
        self.joins.append(self._advance(gap))

    @rule(gap=gaps)
    def retire(self, gap):
        self.retires.append(self._advance(gap))

    def teardown(self):
        runtime, report = run_churn(
            self.scheduler,
            migrations=self.migrations,
            swaps=self.swaps,
            crashes=self.crashes,
            joins=self.joins,
            retires=self.retires,
        )
        assert_reference_model(runtime, report)


ReconfigChurnModel.TestCase.settings = settings(
    max_examples=12, stateful_step_count=6, deadline=None
)
TestReconfigChurnModel = ReconfigChurnModel.TestCase


class TestFullChurnAllSchedulers:
    """One maximal interleaving -- every churn kind in one run -- pinned
    across every registered scheduler, so all eight hit the battery on
    every suite run (the state machine above only samples them)."""

    import pytest

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_full_churn(self, scheduler):
        runtime, report = run_churn(
            scheduler,
            migrations=(
                JobMigration(at_s=6.0, max_jobs=2, include_running=True),
                JobMigration(at_s=18.0, max_jobs=1, include_running=False),
            ),
            swaps=(SchedulerSwap(at_s=12.0, scheduler="baseline"),),
            crashes=((9.0, 6.0),),
            joins=(8.0,),
            retires=(22.0,),
        )
        assert_reference_model(runtime, report)
        assert report.completed > 0


@settings(max_examples=10, deadline=None)
@given(
    scheduler=st.sampled_from(sorted(SCHEDULERS)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_churn_is_seed_deterministic(scheduler, seed):
    """The same seed and timeline always produce the same report --
    migrations and hot-swaps must not introduce hidden nondeterminism."""
    timeline = dict(
        migrations=(JobMigration(at_s=5.0, max_jobs=2, include_running=True),),
        swaps=(SchedulerSwap(at_s=10.0, scheduler="round-robin"),),
    )
    _, first = run_churn(scheduler, seed=seed, **timeline)
    _, second = run_churn(scheduler, seed=seed, **timeline)
    assert first.to_dict() == second.to_dict()
