"""Fault edge cases at the seams between subsystems.

Three interactions the broad recovery suites skate over, each run under
the live invariant monitor (``check=True``) so the conservation and
ordering laws vouch for the recovery, not just the headline counts:

* a worker crash while its repository download is mid-flight through a
  fair-shared origin pipe (the pipe must drop the dead flow and
  re-settle the survivors' rates);
* a network partition that heals while a bidding re-contest for an
  orphaned job is pending (held reliable messages must drain without
  double-allocating);
* retry-budget exhaustion: orphans whose re-dispatch budget is spent
  must land in ``failed_jobs`` as permanent, terminal failures.
"""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.faults import FaultPlan, NetworkPartition, RecoveryConfig, WorkerCrash
from repro.net.topology import TopologyConfig
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER
from repro.schedulers.registry import make_scheduler

pytestmark = pytest.mark.faults


def stream_of(n=6, size=80.0):
    return JobStream(
        arrivals=[
            JobArrival(
                at=float(i) * 0.5,
                job=Job(
                    job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=size
                ),
            )
            for i in range(n)
        ]
    )


def build_runtime(
    scheduler="bidding",
    faults=None,
    allow_partial=False,
    stream=None,
    shared_origin_mbps=None,
    seed=0,
):
    return WorkflowRuntime(
        profile=make_profile(make_spec("w1"), make_spec("w2"), make_spec("w3")),
        stream=stream if stream is not None else stream_of(),
        scheduler=make_scheduler(scheduler),
        config=EngineConfig(
            seed=seed,
            noise_kind="none",
            noise_params={},
            topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
            shared_origin_mbps=shared_origin_mbps,
            check=True,
            trace=True,
            max_sim_time=5000.0,
        ),
        faults=faults,
        allow_partial=allow_partial,
    )


class TestCrashMidTransfer:
    def test_crash_during_fair_shared_download(self):
        # 80 MB repos through 10 MB/s worker links hanging off a 15 MB/s
        # shared origin: several flows are always settling in the pipe
        # when w1 dies at t=3.  The pipe must evict the dead flow,
        # re-settle the survivors, and the orphan must complete
        # elsewhere -- with the bandwidth-conservation invariant
        # watching every completed transfer.
        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=3.0, worker="w1", restart_after_s=10.0),),
            recovery=RecoveryConfig(max_redispatches=5, backoff_base_s=0.1),
        )
        runtime = build_runtime(faults=plan, shared_origin_mbps=15.0)
        result = runtime.run()
        assert result.jobs_completed == 6
        assert result.failed_jobs == ()
        assert result.crashes == 1

    def test_crash_mid_transfer_all_pull_schedulers(self):
        # The pull family routes jobs through offers, so a crash must
        # also reclaim any offer in flight to the victim.
        for scheduler in ("baseline", "matchmaking", "delay"):
            plan = FaultPlan(
                crashes=(WorkerCrash(at_s=3.0, worker="w2", restart_after_s=8.0),),
                recovery=RecoveryConfig(max_redispatches=5, backoff_base_s=0.1),
            )
            runtime = build_runtime(
                scheduler=scheduler, faults=plan, shared_origin_mbps=15.0
            )
            result = runtime.run()
            assert result.jobs_completed == 6, scheduler
            assert result.failed_jobs == (), scheduler


class TestPartitionHealsDuringRecontest:
    def test_heal_with_recontest_pending(self):
        # w1 dies at t=2 holding work; the re-contest for its orphan
        # runs while w2 sits behind a partition (its bid -- a droppable
        # control message -- cannot cross, and reliable traffic to it is
        # held).  The cut heals at t=8: held messages drain, the
        # contest state machine must still see every job allocated
        # exactly once.
        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=2.0, worker="w1", restart_after_s=12.0),),
            partitions=(NetworkPartition(start_s=1.5, end_s=8.0, group=("w2",)),),
            recovery=RecoveryConfig(max_redispatches=5, backoff_base_s=0.1),
        )
        runtime = build_runtime(faults=plan)
        result = runtime.run()
        assert result.jobs_completed == 6
        assert result.failed_jobs == ()

    def test_heal_after_restart_too(self):
        # Same shape, but the partition outlives the crash *and* the
        # restart, so the healed broker also delivers traffic queued for
        # the reborn worker.
        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=2.0, worker="w1", restart_after_s=3.0),),
            partitions=(NetworkPartition(start_s=1.5, end_s=9.0, group=("w3",)),),
            recovery=RecoveryConfig(max_redispatches=5, backoff_base_s=0.1),
        )
        runtime = build_runtime(faults=plan)
        result = runtime.run()
        assert result.jobs_completed == 6
        assert result.failed_jobs == ()


class TestRetryBudgetExhaustion:
    def test_exhausted_budget_fails_permanently(self):
        # Zero re-dispatches allowed: whatever w1 holds when it dies is
        # immediately and permanently failed, and the run (allow_partial)
        # reports it rather than stalling.
        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=3.0, worker="w1"),),
            recovery=RecoveryConfig(max_redispatches=0, backoff_base_s=0.1),
        )
        runtime = build_runtime(faults=plan, allow_partial=True)
        result = runtime.run()
        assert result.failed_jobs, "the orphans should have exhausted the budget"
        assert result.jobs_completed + len(result.failed_jobs) == 6
        for job_id in result.failed_jobs:
            reason = runtime.master.failed_jobs[job_id]
            assert "retry budget exhausted" in reason

    def test_failed_jobs_are_terminal_for_the_monitor(self):
        # The monitor's lifecycle law treats failure as a terminal
        # state; final_check() ran inside runtime.run() above, so a
        # second run here only needs to confirm determinism of the
        # failure set.
        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=3.0, worker="w1"),),
            recovery=RecoveryConfig(max_redispatches=0, backoff_base_s=0.1),
        )
        first = build_runtime(faults=plan, allow_partial=True).run()
        second = build_runtime(faults=plan, allow_partial=True).run()
        assert first.failed_jobs == second.failed_jobs
