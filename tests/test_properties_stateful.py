"""Stateful/property tests: cache model conformance, estimator laws,
end-to-end accounting invariants on random workloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from conftest import make_profile, make_spec, make_worker
from repro.core.estimator import CostEstimator
from repro.data.cache import WorkerCache
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import make_scheduler
from repro.sim import Simulator
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


class UnboundedCacheModel(RuleBasedStateMachine):
    """The unbounded cache must behave exactly like a dict + counters."""

    def __init__(self):
        super().__init__()
        self.cache = WorkerCache()
        self.model: dict[str, float] = {}
        self.model_hits = 0
        self.model_misses = 0

    repo_ids = st.integers(min_value=0, max_value=12).map(lambda i: f"r{i}")
    sizes = st.floats(min_value=0.5, max_value=500.0)

    @rule(repo_id=repo_ids, size=sizes)
    def lookup_then_insert_on_miss(self, repo_id, size):
        hit = self.cache.lookup(repo_id)
        model_hit = repo_id in self.model
        assert hit == model_hit
        if model_hit:
            self.model_hits += 1
        else:
            self.model_misses += 1
            self.cache.insert(repo_id, size)
            self.model[repo_id] = size

    @rule(repo_id=repo_ids)
    def peek_is_pure(self, repo_id):
        before = (self.cache.stats.hits, self.cache.stats.misses)
        assert self.cache.peek(repo_id) == (repo_id in self.model)
        assert (self.cache.stats.hits, self.cache.stats.misses) == before

    @invariant()
    def counters_match_model(self):
        import math

        assert self.cache.stats.hits == self.model_hits
        assert self.cache.stats.misses == self.model_misses
        assert self.cache.contents() == self.model
        # Summation order differs (LRU reorders on hits), so compare to
        # float tolerance, not bit equality.
        assert math.isclose(self.cache.used_mb, sum(self.model.values()), rel_tol=1e-12)


TestUnboundedCacheModel = UnboundedCacheModel.TestCase


class BoundedCacheModel(RuleBasedStateMachine):
    """The bounded cache must never exceed capacity (except a lone
    oversize item) and must evict in LRU order."""

    CAPACITY = 300.0

    def __init__(self):
        super().__init__()
        self.cache = WorkerCache(capacity_mb=self.CAPACITY)
        #: LRU model: list of (repo_id, size), oldest first.
        self.model: list[tuple[str, float]] = []

    repo_ids = st.integers(min_value=0, max_value=8).map(lambda i: f"r{i}")
    sizes = st.floats(min_value=10.0, max_value=200.0)

    def _model_touch(self, repo_id):
        for index, (rid, size) in enumerate(self.model):
            if rid == repo_id:
                self.model.append(self.model.pop(index))
                return True
        return False

    def _model_insert(self, repo_id, size):
        while self.model and sum(s for _, s in self.model) + size > self.CAPACITY:
            self.model.pop(0)
        self.model.append((repo_id, size))

    @rule(repo_id=repo_ids, size=sizes)
    def access(self, repo_id, size):
        if self.cache.lookup(repo_id):
            assert self._model_touch(repo_id)
        else:
            assert not self._model_touch(repo_id)
            self.cache.insert(repo_id, size)
            self._model_insert(repo_id, size)

    @invariant()
    def contents_and_order_match(self):
        assert list(self.cache.contents().items()) == self.model

    @invariant()
    def capacity_respected(self):
        assert self.cache.used_mb <= self.CAPACITY or len(self.cache) == 1


TestBoundedCacheModel = BoundedCacheModel.TestCase


class TestEstimatorLaws:
    """Algebraic properties of Listing 2's estimate."""

    @given(
        size=st.floats(min_value=1.0, max_value=1000.0),
        queued=st.lists(st.floats(min_value=0.0, max_value=500.0), max_size=6),
    )
    def test_bid_decomposition(self, size, queued):
        sim = Simulator()
        worker = make_worker(sim)
        for index, cost in enumerate(queued):
            worker.unfinished[f"q{index}"] = cost
        estimator = CostEstimator(worker)
        job = Job(job_id="j", task=TASK_ANALYZER, repo_id="r", size_mb=size)
        estimate = estimator.estimate(job)
        assert estimate.total_s == (
            estimate.workload_s + estimate.transfer_s + estimate.processing_s
        )
        assert estimate.workload_s == sum(queued)

    @given(size=st.floats(min_value=1.0, max_value=1000.0))
    def test_caching_never_increases_bid(self, size):
        sim = Simulator()
        cold_worker = make_worker(sim)
        job = Job(job_id="j", task=TASK_ANALYZER, repo_id="r", size_mb=size)
        cold = CostEstimator(cold_worker).estimate(job).total_s

        sim2 = Simulator()
        warm_worker = make_worker(sim2)
        warm_worker.cache.insert("r", size)
        warm = CostEstimator(warm_worker).estimate(job).total_s
        assert warm <= cold

    @given(
        small=st.floats(min_value=1.0, max_value=500.0),
        delta=st.floats(min_value=0.1, max_value=500.0),
    )
    def test_bid_monotone_in_size(self, small, delta):
        sim = Simulator()
        worker = make_worker(sim)
        estimator = CostEstimator(worker)
        job_small = Job(job_id="a", task=TASK_ANALYZER, repo_id="r1", size_mb=small)
        job_large = Job(job_id="b", task=TASK_ANALYZER, repo_id="r2", size_mb=small + delta)
        assert (
            estimator.estimate(job_large).total_s
            > estimator.estimate(job_small).total_s
        )

    @given(speed_factor=st.floats(min_value=1.1, max_value=16.0))
    def test_faster_worker_bids_lower(self, speed_factor):
        job = Job(job_id="j", task=TASK_ANALYZER, repo_id="r", size_mb=100.0)
        sim = Simulator()
        slow = make_worker(sim, make_spec("slow"))
        sim2 = Simulator()
        fast = make_worker(
            sim2, make_spec("slow").scaled(speed_factor, name="fast")
        )
        assert (
            CostEstimator(fast).estimate(job).total_s
            < CostEstimator(slow).estimate(job).total_s
        )


class TestEndToEndAccounting:
    """For any random workload, the accounting identities must hold."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_jobs=st.integers(min_value=1, max_value=25),
        scheduler=st.sampled_from(["bidding", "baseline", "spark", "random"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_accounting_identities(self, seed, n_jobs, scheduler):
        rng = np.random.default_rng(seed)
        arrivals = []
        for index in range(n_jobs):
            repo = f"r{rng.integers(0, max(1, n_jobs // 2))}"
            size = float(rng.uniform(1.0, 200.0))
            arrivals.append(
                JobArrival(
                    at=float(rng.uniform(0, 20)),
                    job=Job(
                        job_id=f"j{index}",
                        task=TASK_ANALYZER,
                        repo_id=repo,
                        size_mb=size,
                    ),
                )
            )
        # One size per repo (a clone has one size).
        sizes: dict[str, float] = {}
        fixed = []
        for arrival in arrivals:
            size = sizes.setdefault(arrival.job.repo_id, arrival.job.size_mb)
            fixed.append(
                JobArrival(
                    at=arrival.at,
                    job=Job(
                        job_id=arrival.job.job_id,
                        task=TASK_ANALYZER,
                        repo_id=arrival.job.repo_id,
                        size_mb=size,
                    ),
                )
            )
        stream = JobStream(arrivals=fixed)
        runtime = WorkflowRuntime(
            profile=make_profile(make_spec("w1"), make_spec("w2")),
            stream=stream,
            scheduler=make_scheduler(scheduler),
            config=EngineConfig(
                seed=seed,
                noise_kind="none",
                noise_params={},
                topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
            ),
        )
        result = runtime.run()
        # Identity 1: every job completed exactly once.
        assert result.jobs_completed == n_jobs
        # Identity 2: each data job either hit or missed.
        assert result.cache_hits + result.cache_misses == n_jobs
        # Identity 3: data load equals what actually moved through links.
        link_total = sum(w.machine.link.total_mb for w in runtime.workers.values())
        assert abs(result.data_load_mb - link_total) < 1e-6
        # Identity 4: misses at least the number of distinct repos used
        # (cold caches) and at most the job count.
        distinct = len({a.job.repo_id for a in fixed})
        assert distinct <= result.cache_misses <= n_jobs