"""Cross-layer observability wiring: fault surfacing, trace index,
invariant-violation lifecycle context, service probes, CLI trace."""

import json

import pytest

from conftest import make_profile, make_spec
from repro.check.invariants import InvariantMonitor, InvariantViolation
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.faults import FaultPlan, RecoveryConfig, WorkerCrash
from repro.metrics.trace import Trace
from repro.schedulers.registry import make_scheduler
from repro.workload.job import Job, JobStream
from repro.workload.msr import TASK_ANALYZER


def burst_stream(n=8, size=10.0):
    return JobStream.burst(
        [
            Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=size)
            for i in range(n)
        ]
    )


class TestFaultSurfacing:
    def test_injector_actions_appear_in_main_trace(self):
        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=1.0, worker="w1", restart_after_s=2.0),),
            recovery=RecoveryConfig(),
        )
        runtime = WorkflowRuntime(
            profile=make_profile(make_spec("w1"), make_spec("w2")),
            stream=burst_stream(),
            scheduler=make_scheduler("bidding"),
            config=EngineConfig(seed=4),
            faults=plan,
        )
        runtime.run()
        trace = runtime.metrics.trace
        crashes = trace.of_kind("fault_crash")
        restarts = trace.of_kind("fault_restart")
        assert [event.worker for event in crashes] == ["w1"]
        assert [event.worker for event in restarts] == ["w1"]
        # Fleet-level events carry the placeholder job id.
        assert all(event.job_id == "-" for event in crashes + restarts)
        # The injector's private log and the trace agree on times.
        injector_times = [at for at, kind, _ in runtime.injector.events if kind == "crash"]
        assert [event.time for event in crashes] == injector_times

    def test_fault_events_skipped_when_trace_disabled(self):
        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=1.0, worker="w1", restart_after_s=2.0),),
            recovery=RecoveryConfig(),
        )
        runtime = WorkflowRuntime(
            profile=make_profile(make_spec("w1"), make_spec("w2")),
            stream=burst_stream(),
            scheduler=make_scheduler("bidding"),
            config=EngineConfig(seed=4, trace=False),
            faults=plan,
        )
        runtime.run()
        assert len(runtime.metrics.trace.events) == 0
        # ... but the injector's own log still records everything.
        assert any(kind == "crash" for _, kind, _ in runtime.injector.events)


class TestTraceIndex:
    def test_for_job_matches_linear_scan(self):
        trace = Trace()
        for i in range(50):
            trace.record(float(i), "submitted", f"j{i % 5}")
            trace.record(float(i) + 0.5, "completed", f"j{i % 5}", "w1")
        for job_id in (f"j{i}" for i in range(5)):
            expected = [e for e in trace.events if e.job_id == job_id]
            assert trace.for_job(job_id) == expected

    def test_index_extends_after_new_records(self):
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        assert len(trace.for_job("j1")) == 1  # index built here
        trace.record(1.0, "completed", "j1", "w1")
        assert len(trace.for_job("j1")) == 2  # incrementally extended
        assert trace.first("completed", "j1").time == 1.0

    def test_index_rebuilt_after_truncation(self):
        trace = Trace()
        for i in range(10):
            trace.record(float(i), "submitted", f"j{i}")
        assert trace.for_job("j9")
        del trace.events[5:]  # external truncation (fuzzer shrinking)
        assert trace.for_job("j9") == []
        assert len(trace.for_job("j4")) == 1

    def test_for_job_returns_copy(self):
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        events = trace.for_job("j1")
        events.append("garbage")
        assert len(trace.for_job("j1")) == 1

    def test_first_missing_is_none(self):
        trace = Trace()
        assert trace.first("completed", "nope") is None


class TestViolationLifecycle:
    def test_violation_carries_job_lifecycle_from_trace(self):
        monitor = InvariantMonitor()
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        trace.record(1.0, "assigned", "j1", "w1")
        monitor.trace = trace
        with pytest.raises(InvariantViolation) as err:
            # Completion without a submission seen by the monitor.
            monitor.on_completed("j1", "w1", now=2.0)
        kinds = [kind for _, kind, _ in err.value.events]
        assert "trace:submitted" in kinds
        assert "trace:assigned" in kinds

    def test_violation_without_trace_still_raises(self):
        monitor = InvariantMonitor()
        assert monitor.trace is None
        with pytest.raises(InvariantViolation):
            monitor.on_completed("j1", "w1", now=2.0)


class TestServiceObs:
    def test_service_probes_and_slo_gauge(self):
        from repro.serve import (
            AdmissionConfig,
            ServiceConfig,
            ServiceRuntime,
            make_arrivals,
        )

        runtime = ServiceRuntime(
            profile=make_profile(make_spec("w1"), make_spec("w2")),
            scheduler=make_scheduler("bidding"),
            arrivals=make_arrivals("poisson", rate=1.0),
            admission_config=AdmissionConfig(queue_cap=8),
            service_config=ServiceConfig(duration_s=30.0, deadline_s=60.0),
            config=EngineConfig(seed=5, obs=True),
        )
        runtime.run()
        names = runtime.obs.probes.names()
        for expected in (
            "service.inflight",
            "admission.depth",
            "admission.shed",
            "slo.attainment",
            "fleet.active",
        ):
            assert expected in names, names
        attainment = [v for _, v in runtime.obs.probes.series("slo.attainment")]
        assert all(0.0 <= value <= 1.0 for value in attainment)

    def test_service_obs_off_is_none(self):
        from repro.serve import AdmissionConfig, ServiceConfig, ServiceRuntime, make_arrivals

        runtime = ServiceRuntime(
            profile=make_profile(make_spec("w1")),
            scheduler=make_scheduler("bidding"),
            arrivals=make_arrivals("poisson", rate=1.0),
            admission_config=AdmissionConfig(queue_cap=8),
            service_config=ServiceConfig(duration_s=10.0),
            config=EngineConfig(seed=5),
        )
        assert runtime.obs is None
        runtime.run()


class TestCli:
    def test_trace_subcommand_writes_perfetto(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.json"
        code = main(
            [
                "trace",
                str(out),
                "--scheduler",
                "bidding",
                "--workload",
                "80%_small",
                "--profile",
                "fast-slow",
                "--seed",
                "7",
            ]
        )
        assert code == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["traceEvents"]
        stdout = capsys.readouterr().out
        assert "jobs traced end-to-end" in stdout
        assert "chrome://tracing" in stdout

    def test_trace_subcommand_console_views(self, capsys):
        from repro.cli import main

        code = main(
            [
                "trace",
                "--scheduler",
                "bidding",
                "--workload",
                "80%_small",
                "--profile",
                "fast-slow",
                "--seed",
                "7",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "workers (# busy, . idle):" in stdout
        assert "time attribution" in stdout

    def test_run_trace_out_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.json"
        code = main(
            [
                "run",
                "--scheduler",
                "bidding",
                "--workload",
                "80%_small",
                "--profile",
                "fast-slow",
                "--seed",
                "7",
                "--iterations",
                "1",
                "--trace-out",
                str(out),
            ]
        )
        assert code == 0
        assert json.loads(out.read_text(encoding="utf-8"))["traceEvents"]
