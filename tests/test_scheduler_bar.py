"""Protocol tests for the BAR scheduler (Jin et al. 2011 adaptation)."""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.schedulers.bar import BARMasterPolicy, make_bar_policy
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def quiet_config(seed=0):
    return EngineConfig(
        seed=seed,
        noise_kind="none",
        noise_params={},
        topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
    )


def arrivals(*specs):
    return JobStream(
        arrivals=[
            JobArrival(
                at=at,
                job=Job(job_id=job_id, task=TASK_ANALYZER, repo_id=repo, size_mb=size),
            )
            for job_id, repo, size, at in specs
        ]
    )


def run_bar(stream, specs=None, initial_caches=None, **kwargs):
    profile = make_profile(*(specs or [make_spec(f"w{i + 1}") for i in range(3)]))
    runtime = WorkflowRuntime(
        profile=profile,
        stream=stream,
        scheduler=make_bar_policy(**kwargs),
        config=quiet_config(),
        initial_caches=initial_caches,
    )
    return runtime, runtime.run()


class TestPhase1Locality:
    def test_holders_get_their_jobs(self):
        stream = arrivals(
            ("j0", "ra", 50.0, 0.0),
            ("j1", "rb", 50.0, 0.0),
        )
        runtime, result = run_bar(
            stream,
            initial_caches={"w1": {"ra": 50.0}, "w2": {"rb": 50.0}},
        )
        assert runtime.master.assignments["j0"] == "w1"
        assert runtime.master.assignments["j1"] == "w2"
        assert result.cache_misses == 0

    def test_unlocatable_jobs_balance(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 50.0, 0.0) for i in range(9)])
        _runtime, result = run_bar(stream)
        assert sorted(result.per_worker_jobs.values()) == [3, 3, 3]


class TestPhase2Balance:
    def test_convoy_broken_by_adjustment(self):
        """All jobs local to one worker: BAR moves some away, unlike a
        greedy-locality convoy."""
        stream = arrivals(*[(f"j{i}", "hot", 100.0, 0.0) for i in range(12)])
        runtime, result = run_bar(
            stream, initial_caches={"w1": {"hot": 100.0}}
        )
        assignments = set(runtime.master.assignments.values())
        assert len(assignments) > 1, "phase 2 should offload the holder"
        policy = runtime.master.policy
        assert policy.adjustments > 0

    def test_zero_adjustments_stays_greedy(self):
        stream = arrivals(*[(f"j{i}", "hot", 100.0, 0.0) for i in range(12)])
        runtime, _result = run_bar(
            stream,
            initial_caches={"w1": {"hot": 100.0}},
            max_adjustments=0,
        )
        assert set(runtime.master.assignments.values()) == {"w1"}

    def test_speed_awareness(self):
        """BAR prices remote execution with the fleet's true speeds, so a
        fast worker absorbs more of the cold workload."""
        specs = [
            make_spec("fast", network=40.0, rw=200.0, cpu_factor=4.0),
            make_spec("slow", network=10.0, rw=50.0),
        ]
        stream = arrivals(*[(f"j{i}", f"r{i}", 100.0, 0.0) for i in range(10)])
        _runtime, result = run_bar(stream, specs=specs)
        assert result.per_worker_jobs["fast"] > result.per_worker_jobs["slow"]


class TestValidation:
    def test_requires_speed_view(self):
        policy = BARMasterPolicy()

        class FakeMaster:
            worker_names = ["w1"]

        policy.master = FakeMaster()
        with pytest.raises(RuntimeError, match="speed_view"):
            policy.on_upfront_jobs(
                [Job(job_id="j", task=TASK_ANALYZER, repo_id="r", size_mb=1.0)]
            )

    def test_negative_adjustments_rejected(self):
        with pytest.raises(ValueError):
            BARMasterPolicy(max_adjustments=-1)

    def test_dynamic_jobs_complete(self):
        # Jobs arriving after the upfront plan (never planned) still run.
        stream = arrivals(
            ("j0", "r0", 50.0, 0.0),
            ("late", "rx", 50.0, 30.0),
        )
        _runtime, result = run_bar(stream)
        assert result.jobs_completed == 2
