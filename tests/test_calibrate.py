"""Tests for the calibration audit."""

import pytest

from repro.experiments.calibrate import (
    Calibration,
    CalibrationScore,
    PAPER_DATA_REDUCTION_PCT,
    PAPER_MISS_REDUCTION_PCT,
    PAPER_SPEEDUP_PCT,
    evaluate,
    render,
    run_grid,
    score_result,
)
from repro.experiments.fig3_aggregates import Fig3Result, WorkloadRow


def synthetic_result(speedup_factor):
    """A Fig3Result with uniform rows at a chosen baseline/bidding ratio."""
    rows = []
    for name in ("a", "b"):
        rows.append(
            WorkloadRow(
                workload=name,
                baseline_time_s=100.0,
                bidding_time_s=100.0 / speedup_factor,
                baseline_misses=40.0,
                bidding_misses=20.0,
                baseline_data_mb=1000.0,
                bidding_data_mb=550.0,
            )
        )
    return Fig3Result(rows=tuple(rows))


class TestScoring:
    def test_perfect_match_scores_zero(self):
        # Construct a result hitting the paper numbers exactly.
        rows = (
            WorkloadRow(
                workload="w",
                baseline_time_s=100.0,
                bidding_time_s=100.0 - PAPER_SPEEDUP_PCT,
                baseline_misses=100.0,
                bidding_misses=100.0 - PAPER_MISS_REDUCTION_PCT,
                baseline_data_mb=100.0,
                bidding_data_mb=100.0 - PAPER_DATA_REDUCTION_PCT,
            ),
        )
        score = score_result(Calibration(), Fig3Result(rows=rows))
        assert score.score == pytest.approx(0.0, abs=1e-9)

    def test_gap_is_mean_absolute(self):
        result = synthetic_result(speedup_factor=2.0)  # 50% speedup
        score = score_result(Calibration(), result)
        expected = (
            abs(50.0 - PAPER_SPEEDUP_PCT)
            + abs(50.0 - PAPER_MISS_REDUCTION_PCT)
            + abs(45.0 - PAPER_DATA_REDUCTION_PCT)
        ) / 3.0
        assert score.score == pytest.approx(expected)

    def test_calibration_name(self):
        assert Calibration(label="x").name() == "x"
        assert "sigma=0.3" in Calibration(noise_sigma=0.3).name()


class TestGrid:
    def test_small_grid_runs_and_sorts(self):
        grid = (
            Calibration(noise_sigma=0.0, label="quiet"),
            Calibration(noise_sigma=0.25, label="noisy"),
        )
        scores = run_grid(grid, seeds=(11,))
        assert len(scores) == 2
        assert scores[0].score <= scores[1].score

    def test_evaluate_respects_window(self):
        # A pathologically short window degrades the aggregates.
        good = evaluate(Calibration(bid_window_s=1.0), profiles=("one-slow",))
        bad = evaluate(Calibration(bid_window_s=0.05), profiles=("one-slow",))
        assert bad.speedup_pct < good.speedup_pct

    def test_render_contains_labels(self):
        scores = [
            CalibrationScore(
                calibration=Calibration(label="demo"),
                speedup_pct=30.0,
                miss_reduction_pct=40.0,
                data_reduction_pct=50.0,
            )
        ]
        text = render(scores)
        assert "demo" in text and "mean |gap|" in text
