"""The unified override pathway: routing and loud rejection of typos.

The 1.x alias shims (``duration``, ``loss``, ...) are gone: only
canonical dataclass field names resolve, and anything else -- including
the retired spellings -- raises ``TypeError`` listing the accepted
keywords.
"""

import pytest

from repro.config import apply_overrides, resolve_overrides
from repro.engine.runtime import EngineConfig
from repro.experiments.runner import CellSpec
from repro.serve import AdmissionConfig, ServiceConfig

#: The removed 1.x spellings and the canonical field each must name now.
RETIRED_ALIASES = {
    "duration": "duration_s",
    "deadline": "deadline_s",
    "max_inflight": "max_inflight_per_worker",
    "loss": "message_loss",
    "max_time": "max_sim_time",
}


class TestResolveOverrides:
    def test_routes_by_first_declaring_target(self):
        service_kw, admission_kw, engine_kw = resolve_overrides(
            {"duration_s": 60.0, "queue_cap": 8, "message_loss": 0.1},
            ServiceConfig,
            AdmissionConfig,
            EngineConfig,
        )
        assert service_kw == {"duration_s": 60.0}
        assert admission_kw == {"queue_cap": 8}
        assert engine_kw == {"message_loss": 0.1}

    @pytest.mark.parametrize("alias,canonical", sorted(RETIRED_ALIASES.items()))
    def test_retired_aliases_are_rejected(self, alias, canonical):
        with pytest.raises(TypeError, match=alias):
            resolve_overrides(
                {alias: 7}, ServiceConfig, AdmissionConfig, EngineConfig
            )

    @pytest.mark.parametrize("canonical", sorted(RETIRED_ALIASES.values()))
    def test_canonical_spellings_resolve_warning_free(self, canonical, recwarn):
        buckets = resolve_overrides(
            {canonical: 7}, ServiceConfig, AdmissionConfig, EngineConfig
        )
        assert any(bucket == {canonical: 7} for bucket in buckets)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_fault_tolerance_is_a_plain_engine_field(self, recwarn):
        (engine_kw,) = resolve_overrides({"fault_tolerance": True}, EngineConfig)
        assert engine_kw == {"fault_tolerance": True}
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_unknown_key_raises_listing_accepted(self):
        with pytest.raises(TypeError, match="duration_s"):
            resolve_overrides({"durashun": 1.0}, ServiceConfig)

    def test_needs_a_target(self):
        with pytest.raises(TypeError, match="at least one target"):
            resolve_overrides({"seed": 1})


class TestApplyOverrides:
    def test_replaces_fields(self):
        config = apply_overrides(EngineConfig(seed=1), {"message_loss": 0.2})
        assert config.seed == 1
        assert config.message_loss == 0.2

    def test_no_overrides_returns_same_instance(self):
        config = EngineConfig(seed=1)
        assert apply_overrides(config, {}) is config

    def test_retired_alias_rejected(self):
        with pytest.raises(TypeError, match="loss"):
            apply_overrides(EngineConfig(seed=1), {"loss": 0.2})


class TestCellSpecOverrides:
    def test_cellspec_engine_overrides_apply_canonical_names(self):
        spec = CellSpec(
            scheduler="bidding",
            workload="80%_large",
            profile="all-equal",
            seed=5,
            engine_overrides=(("message_loss", 0.05), ("max_sim_time", 99.0)),
        )
        config = spec.engine_config()
        assert config.message_loss == 0.05
        assert config.max_sim_time == 99.0
        assert config.seed == 5

    def test_cellspec_rejects_retired_alias(self):
        spec = CellSpec(
            scheduler="bidding",
            workload="80%_large",
            profile="all-equal",
            seed=5,
            engine_overrides=(("loss", 0.05),),
        )
        with pytest.raises(TypeError, match="loss"):
            spec.engine_config()
