"""The unified override pathway: routing, aliases, deprecation shims."""

import pytest

from repro.config import (
    DEPRECATED_ALIASES,
    apply_overrides,
    canonicalize,
    resolve_overrides,
)
from repro.engine.runtime import EngineConfig
from repro.experiments.runner import CellSpec
from repro.serve import AdmissionConfig, ServiceConfig


class TestCanonicalize:
    def test_plain_keys_pass_through(self):
        assert canonicalize({"seed": 3}) == {"seed": 3}

    @pytest.mark.parametrize("alias,canonical", sorted(DEPRECATED_ALIASES.items()))
    def test_aliases_rewrite_with_warning(self, alias, canonical):
        with pytest.warns(DeprecationWarning, match=alias):
            assert canonicalize({alias: 7}) == {canonical: 7}

    def test_alias_plus_replacement_is_ambiguous(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="both"):
                canonicalize({"duration": 1.0, "duration_s": 2.0})

    def test_fault_tolerance_soft_deprecation_passes_through(self):
        with pytest.warns(DeprecationWarning, match="FaultPlan"):
            assert canonicalize({"fault_tolerance": True}) == {"fault_tolerance": True}


class TestResolveOverrides:
    def test_routes_by_first_declaring_target(self):
        service_kw, admission_kw, engine_kw = resolve_overrides(
            {"duration_s": 60.0, "queue_cap": 8, "message_loss": 0.1},
            ServiceConfig,
            AdmissionConfig,
            EngineConfig,
        )
        assert service_kw == {"duration_s": 60.0}
        assert admission_kw == {"queue_cap": 8}
        assert engine_kw == {"message_loss": 0.1}

    def test_aliases_route_to_their_canonical_home(self):
        with pytest.warns(DeprecationWarning):
            service_kw, admission_kw = resolve_overrides(
                {"deadline": 30.0, "max_inflight": 2}, ServiceConfig, AdmissionConfig
            )
        assert service_kw == {"deadline_s": 30.0, "max_inflight_per_worker": 2}
        assert admission_kw == {}

    def test_unknown_key_raises_listing_accepted(self):
        with pytest.raises(TypeError, match="duration_s"):
            resolve_overrides({"durashun": 1.0}, ServiceConfig)

    def test_needs_a_target(self):
        with pytest.raises(TypeError, match="at least one target"):
            resolve_overrides({"seed": 1})


class TestApplyOverrides:
    def test_replaces_fields(self):
        config = apply_overrides(EngineConfig(seed=1), {"message_loss": 0.2})
        assert config.seed == 1
        assert config.message_loss == 0.2

    def test_no_overrides_returns_same_instance(self):
        config = EngineConfig(seed=1)
        assert apply_overrides(config, {}) is config

    def test_cellspec_engine_overrides_apply_with_alias(self):
        spec = CellSpec(
            scheduler="bidding",
            workload="80%_large",
            profile="all-equal",
            seed=5,
            engine_overrides=(("loss", 0.05), ("max_sim_time", 99.0)),
        )
        with pytest.warns(DeprecationWarning, match="loss"):
            config = spec.engine_config()
        assert config.message_loss == 0.05
        assert config.max_sim_time == 99.0
        assert config.seed == 5
