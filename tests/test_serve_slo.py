"""SLO-tracking tests: the P-squared sketch, latency stats, the tracker
and the frozen report."""

import numpy as np
import pytest

from repro.metrics.collector import MetricsCollector
from repro.serve.slo import LatencyStats, P2Quantile, ServiceReport, SLOTracker
from repro.workload.job import Job
from repro.workload.msr import TASK_ANALYZER


def make_job(index: int) -> Job:
    return Job(job_id=f"j{index}", task=TASK_ANALYZER)


class TestP2Quantile:
    def test_empty_is_zero(self):
        assert P2Quantile(0.5).value() == 0.0

    def test_exact_below_six_samples(self):
        sketch = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            sketch.observe(x)
        assert sketch.value() == 3.0

    def test_tracks_uniform_median(self):
        rng = np.random.default_rng(3)
        data = rng.uniform(0.0, 100.0, size=5000)
        sketch = P2Quantile(0.5)
        for x in data:
            sketch.observe(float(x))
        assert sketch.value() == pytest.approx(np.percentile(data, 50), rel=0.05)

    @pytest.mark.parametrize("q,pct", [(0.5, 50), (0.95, 95), (0.99, 99)])
    def test_tracks_lognormal_tails(self, q, pct):
        # Latencies are heavy-tailed; the sketch must stay within a few
        # percent of the exact empirical quantile on a lognormal stream.
        rng = np.random.default_rng(7)
        data = rng.lognormal(mean=1.0, sigma=0.6, size=20_000)
        sketch = P2Quantile(q)
        for x in data:
            sketch.observe(float(x))
        assert sketch.value() == pytest.approx(np.percentile(data, pct), rel=0.05)

    def test_count(self):
        sketch = P2Quantile(0.9)
        for x in range(17):
            sketch.observe(float(x))
        assert sketch.count == 17

    def test_validates_q(self):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                P2Quantile(bad)


class TestLatencyStats:
    def test_aggregates(self):
        stats = LatencyStats()
        for x in (1.0, 2.0, 3.0, 4.0):
            stats.observe(x)
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.max == 4.0

    def test_percentiles_are_ordered(self):
        rng = np.random.default_rng(11)
        stats = LatencyStats()
        for x in rng.exponential(10.0, size=3000):
            stats.observe(float(x))
        assert stats.p50.value() <= stats.p95.value() <= stats.p99.value()

    def test_empty_mean_is_zero(self):
        assert LatencyStats().mean == 0.0


class TestSLOTracker:
    def test_measures_sojourn_latency(self):
        tracker = SLOTracker(MetricsCollector())
        job = make_job(0)
        tracker.job_arrived(10.0, job)
        tracker.job_completed(17.5, job)
        assert tracker.completed == 1
        assert tracker.latency.max == pytest.approx(7.5)

    def test_shed_jobs_count_in_metrics_not_latency(self):
        metrics = MetricsCollector()
        tracker = SLOTracker(metrics)
        job = make_job(0)
        tracker.job_arrived(1.0, job)
        tracker.job_shed(1.0, job, "queue_full")
        assert metrics.jobs_shed == 1
        assert tracker.completed == 0
        assert tracker.latency.count == 0

    def test_deadline_misses(self):
        tracker = SLOTracker(MetricsCollector(), deadline_s=5.0)
        fast, slow = make_job(0), make_job(1)
        tracker.job_arrived(0.0, fast)
        tracker.job_completed(4.0, fast)
        tracker.job_arrived(0.0, slow)
        tracker.job_completed(6.0, slow)
        assert tracker.deadline_misses == 1

    def test_unknown_completion_is_ignored(self):
        tracker = SLOTracker(MetricsCollector())
        tracker.job_completed(1.0, make_job(0))
        assert tracker.completed == 0

    def test_validates_deadline(self):
        with pytest.raises(ValueError):
            SLOTracker(MetricsCollector(), deadline_s=0.0)


def make_report(**overrides) -> ServiceReport:
    fields = dict(
        scheduler="bidding",
        arrival="poisson",
        seed=11,
        duration_s=100.0,
        arrivals=200,
        admitted=150,
        completed=150,
        shed=50,
        latency_p50_s=1.0,
        latency_p95_s=2.0,
        latency_p99_s=3.0,
        latency_mean_s=1.2,
        latency_max_s=4.0,
        deadline_misses=0,
        queue_peak=10,
        workers_initial=5,
        workers_final=5,
        workers_peak=5,
        scale_ups=0,
        scale_downs=0,
        cache_hits=100,
        cache_misses=50,
        data_load_mb=1234.5,
    )
    fields.update(overrides)
    return ServiceReport(**fields)


class TestServiceReport:
    def test_derived_rates(self):
        report = make_report()
        assert report.shed_rate == pytest.approx(0.25)
        assert report.throughput_jobs_per_s == pytest.approx(1.5)

    def test_zero_arrivals_is_safe(self):
        report = make_report(arrivals=0, admitted=0, completed=0, shed=0, duration_s=0.0)
        assert report.shed_rate == 0.0
        assert report.throughput_jobs_per_s == 0.0

    def test_to_dict_is_json_shaped(self):
        import json

        payload = make_report().to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["shed_rate"] == pytest.approx(0.25)
        assert payload["scheduler"] == "bidding"
