"""Tests for trace analytics and result persistence."""

import pytest

from repro.metrics.analysis import (
    DistributionSummary,
    RunAnalysis,
    allocation_delays,
    download_concurrency,
    gantt,
    job_latencies,
    queue_timeline,
    summarize,
    worker_utilization,
)
from repro.metrics.report import RunResult
from repro.metrics.trace import Trace
from repro.experiments.report_io import (
    load_csv,
    load_json,
    save_csv,
    save_json,
    to_dict,
    from_dict,
)


def build_trace():
    """Two workers, three jobs with a full lifecycle."""
    trace = Trace()
    rows = [
        (0.0, "submitted", "j1", None, None),
        (0.0, "submitted", "j2", None, None),
        (5.0, "submitted", "j3", None, None),
        (1.0, "assigned", "j1", "w1", None),
        (1.0, "assigned", "j2", "w2", None),
        (6.0, "assigned", "j3", "w1", None),
        (1.0, "started", "j1", "w1", None),
        (1.5, "download_started", "j1", "w1", 10.0),
        (3.0, "download_finished", "j1", "w1", 10.0),
        (1.0, "started", "j2", "w2", None),
        (2.0, "download_started", "j2", "w2", 5.0),
        (2.5, "download_finished", "j2", "w2", 5.0),
        (4.0, "completed", "j1", "w1", None),
        (3.0, "completed", "j2", "w2", None),
        (6.0, "started", "j3", "w1", None),
        (8.0, "completed", "j3", "w1", None),
    ]
    for time, kind, job_id, worker, detail in sorted(rows, key=lambda r: r[0]):
        trace.record(time, kind, job_id, worker, detail)
    return trace


class TestGantt:
    def test_spans_extracted(self):
        spans = gantt(build_trace())
        assert len(spans) == 3
        j1 = next(s for s in spans if s.job_id == "j1")
        assert j1.worker == "w1"
        assert j1.duration == pytest.approx(3.0)

    def test_incomplete_jobs_omitted(self):
        trace = Trace()
        trace.record(1.0, "started", "jx", "w1")
        assert gantt(trace) == []

    def test_ordered_by_start(self):
        spans = gantt(build_trace())
        starts = [s.started for s in spans]
        assert starts == sorted(starts)


class TestUtilization:
    def test_busy_fractions(self):
        util = worker_utilization(build_trace(), makespan=10.0)
        assert util["w1"] == pytest.approx((3.0 + 2.0) / 10.0)
        assert util["w2"] == pytest.approx(2.0 / 10.0)

    def test_invalid_makespan(self):
        with pytest.raises(ValueError):
            worker_utilization(build_trace(), makespan=0.0)


class TestDelaysAndLatencies:
    def test_allocation_delays(self):
        delays = allocation_delays(build_trace())
        assert delays["j1"] == pytest.approx(1.0)
        assert delays["j3"] == pytest.approx(1.0)

    def test_job_latencies(self):
        latencies = job_latencies(build_trace())
        assert latencies["j1"] == pytest.approx(4.0)
        assert latencies["j2"] == pytest.approx(3.0)

    def test_queue_timeline(self):
        timeline = queue_timeline(build_trace(), "w1")
        assert timeline[0] == (1.0, 1)
        assert timeline[-1][1] == 0  # drains to empty

    def test_download_concurrency(self):
        assert download_concurrency(build_trace()) == 2


class TestSummaries:
    def test_distribution_summary(self):
        summary = DistributionSummary.of([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.max == 4.0
        assert summary.p50 == pytest.approx(2.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            DistributionSummary.of([])

    def test_summarize_bundle(self):
        analysis = summarize(build_trace(), makespan=10.0)
        assert isinstance(analysis, RunAnalysis)
        assert analysis.peak_download_concurrency == 2
        assert analysis.utilization_imbalance == pytest.approx(0.5 / 0.2)

    def test_summarize_real_run(self):
        from conftest import make_profile, make_spec
        from repro.engine.runtime import EngineConfig, WorkflowRuntime
        from repro.schedulers.registry import make_scheduler
        from repro.workload.generators import job_config_by_name

        _corpus, stream = job_config_by_name("80%_small").build(seed=7)
        runtime = WorkflowRuntime(
            profile=make_profile(make_spec("w1"), make_spec("w2")),
            stream=stream,
            scheduler=make_scheduler("bidding"),
            config=EngineConfig(seed=7, trace=True),
        )
        result = runtime.run()
        analysis = summarize(runtime.metrics.trace, result.makespan_s)
        assert set(analysis.utilization) <= {"w1", "w2"}
        assert analysis.job_latency.count == 120
        assert analysis.allocation_delay.mean > 0


class TestReportIO:
    def make_result(self, seed=1, iteration=0):
        return RunResult(
            scheduler="bidding",
            workload="80%_large",
            profile="all-equal",
            seed=seed,
            iteration=iteration,
            makespan_s=123.4,
            cache_misses=10,
            cache_hits=110,
            data_load_mb=456.7,
            jobs_completed=120,
            contest_seconds=12.0,
            contests_fallback=1,
            rejections=0,
            per_worker_mb={"w1": 456.7},
            per_worker_jobs={"w1": 120},
        )

    def test_dict_roundtrip(self):
        result = self.make_result()
        assert from_dict(to_dict(result)) == result

    def test_json_roundtrip(self, tmp_path):
        results = [self.make_result(seed=s) for s in (1, 2, 3)]
        path = save_json(results, tmp_path / "out" / "results.json")
        assert load_json(path) == results

    def test_csv_roundtrip_scalars(self, tmp_path):
        results = [self.make_result(iteration=i) for i in range(3)]
        path = save_csv(results, tmp_path / "results.csv")
        loaded = load_csv(path)
        assert [r.makespan_s for r in loaded] == [123.4] * 3
        assert [r.iteration for r in loaded] == [0, 1, 2]
        # Per-worker maps are JSON-only.
        assert loaded[0].per_worker_mb == {}

    def test_csv_rejects_foreign_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            load_csv(path)
