"""Golden fixed-seed determinism: metrics must be bit-identical.

``golden_determinism.json`` records, for every registered scheduler, the
exact per-iteration metrics of one fixed cell (workload ``80%_small``,
profile ``fast-slow``, seed 7, two iterations with persisting caches).
The fixture was captured before the kernel hot-path overhaul; these
tests compare with **exact** float equality, so any change to event
ordering, float arithmetic or RNG draw order in the kernel, the fluid
network model or the broker shows up as a failure here.

If a *deliberate* behavioural change invalidates the goldens, re-record
with::

    PYTHONPATH=src python tests/regen_golden_determinism.py

(and justify the diff in the commit message -- bit-level drift is the
exact thing this fixture exists to catch).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import CellSpec, run_cell

GOLDEN_PATH = Path(__file__).parent / "golden_determinism.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

#: The cell every scheduler is replayed on (must match the fixture).
WORKLOAD = "80%_small"
PROFILE = "fast-slow"
SEED = 7
ITERATIONS = 2


def _observed(result):
    return {
        "iteration": result.iteration,
        "makespan_s": result.makespan_s,
        "cache_misses": result.cache_misses,
        "cache_hits": result.cache_hits,
        "data_load_mb": result.data_load_mb,
        "jobs_completed": result.jobs_completed,
    }


def test_fixture_covers_every_registered_scheduler():
    from repro.schedulers.registry import SCHEDULERS

    assert set(GOLDEN) == set(SCHEDULERS), (
        "golden fixture out of sync with the scheduler registry; "
        "re-record it for the new/removed schedulers"
    )


@pytest.mark.parametrize("scheduler", sorted(GOLDEN))
def test_fixed_seed_metrics_are_bit_identical(scheduler):
    results = run_cell(
        CellSpec(
            scheduler=scheduler,
            workload=WORKLOAD,
            profile=PROFILE,
            seed=SEED,
            iterations=ITERATIONS,
        )
    )
    expected = GOLDEN[scheduler]
    assert len(results) == len(expected)
    for result, exp in zip(results, expected):
        # Exact equality on floats is deliberate: the determinism
        # contract is bit-level, not approximate.
        assert _observed(result) == exp, f"{scheduler} iteration {result.iteration}"
