"""Re-record ``golden_determinism.json`` (see test_determinism_golden).

Run only when a *deliberate* behavioural change invalidates the
fixture::

    PYTHONPATH=src python tests/regen_golden_determinism.py

Keep the cell parameters below in lockstep with
``test_determinism_golden.py`` (that test asserts against exactly this
recording).
"""

import json
from pathlib import Path

from repro.experiments.runner import CellSpec, run_cell
from repro.schedulers.registry import SCHEDULERS

WORKLOAD = "80%_small"
PROFILE = "fast-slow"
SEED = 7
ITERATIONS = 2


def regenerate(path: Path) -> None:
    golden = {}
    for scheduler in sorted(SCHEDULERS):
        results = run_cell(
            CellSpec(
                scheduler=scheduler,
                workload=WORKLOAD,
                profile=PROFILE,
                seed=SEED,
                iterations=ITERATIONS,
            )
        )
        golden[scheduler] = [
            {
                "iteration": result.iteration,
                "makespan_s": result.makespan_s,
                "cache_misses": result.cache_misses,
                "cache_hits": result.cache_hits,
                "data_load_mb": result.data_load_mb,
                "jobs_completed": result.jobs_completed,
            }
            for result in results
        ]
    path.write_text(
        json.dumps(golden, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"golden fixture re-recorded at {path}")


if __name__ == "__main__":
    regenerate(Path(__file__).parent / "golden_determinism.json")
