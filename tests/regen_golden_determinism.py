"""Re-record ``golden_determinism.json`` (see test_determinism_golden).

Run only when a *deliberate* behavioural change invalidates the
fixture::

    PYTHONPATH=src python tests/regen_golden_determinism.py

CI instead runs the drift gate, which regenerates into memory and fails
when the committed fixture differs from what the code produces now::

    PYTHONPATH=src python tests/regen_golden_determinism.py --check

Keep the cell parameters below in lockstep with
``test_determinism_golden.py`` (that test asserts against exactly this
recording).
"""

import json
import sys
from pathlib import Path

from repro.experiments.runner import CellSpec, run_cell
from repro.schedulers.registry import SCHEDULERS

WORKLOAD = "80%_small"
PROFILE = "fast-slow"
SEED = 7
ITERATIONS = 2


def record() -> dict:
    golden = {}
    for scheduler in sorted(SCHEDULERS):
        results = run_cell(
            CellSpec(
                scheduler=scheduler,
                workload=WORKLOAD,
                profile=PROFILE,
                seed=SEED,
                iterations=ITERATIONS,
            )
        )
        golden[scheduler] = [
            {
                "iteration": result.iteration,
                "makespan_s": result.makespan_s,
                "cache_misses": result.cache_misses,
                "cache_hits": result.cache_hits,
                "data_load_mb": result.data_load_mb,
                "jobs_completed": result.jobs_completed,
            }
            for result in results
        ]
    return golden


def regenerate(path: Path) -> None:
    path.write_text(
        json.dumps(record(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"golden fixture re-recorded at {path}")


def check(path: Path) -> int:
    """Fail (exit 1) when the committed fixture drifts from the code."""
    committed = json.loads(path.read_text(encoding="utf-8"))
    current = record()
    if committed == current:
        print(f"golden fixture at {path} matches the current code")
        return 0
    print(f"golden fixture at {path} DRIFTED from the current code:")
    for scheduler in sorted(set(committed) | set(current)):
        was, now = committed.get(scheduler), current.get(scheduler)
        if was != now:
            print(f"  {scheduler}:")
            print(f"    committed: {json.dumps(was, sort_keys=True)}")
            print(f"    current:   {json.dumps(now, sort_keys=True)}")
    print(
        "If the behavioural change is deliberate, re-record with\n"
        "  PYTHONPATH=src python tests/regen_golden_determinism.py"
    )
    return 1


if __name__ == "__main__":
    fixture = Path(__file__).parent / "golden_determinism.json"
    if "--check" in sys.argv[1:]:
        sys.exit(check(fixture))
    regenerate(fixture)
