"""Thin wrapper: ``golden_determinism.json`` now lives behind the
unified golden tooling in :mod:`repro.experiments.golden`.

Prefer the CLI entry point (the one CI gates on)::

    PYTHONPATH=src python -m repro golden determinism           # re-record
    PYTHONPATH=src python -m repro golden determinism --check   # drift gate

This script remains for muscle memory and for tests importing its
``record``.
"""

import sys

from repro.experiments.golden import FIXTURES, record_determinism as record  # noqa: F401
from repro.experiments.golden import run

if __name__ == "__main__":
    sys.exit(run(["determinism"], do_check="--check" in sys.argv[1:]))
