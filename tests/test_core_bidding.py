"""Protocol tests for the Bidding Scheduler (Listings 1 and 2)."""

import pytest

from conftest import make_profile, make_spec
from repro.core.bidding import make_bidding_policy
from repro.core.learning import HistoricAverageSpeedModel
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def quiet_config(seed=0, **overrides):
    defaults = dict(
        seed=seed,
        noise_kind="none",
        noise_params={},
        topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def arrivals(*specs):
    """specs: (job_id, repo, size, at) tuples."""
    return JobStream(
        arrivals=[
            JobArrival(
                at=at,
                job=Job(
                    job_id=job_id,
                    task=TASK_ANALYZER,
                    repo_id=repo,
                    size_mb=size,
                    base_compute_s=0.0,
                ),
            )
            for job_id, repo, size, at in specs
        ]
    )


def two_worker_runtime(stream, fast_factor=4.0, **policy_kwargs):
    policy_kwargs.setdefault("bid_compute_s", 0.0)
    profile = make_profile(
        make_spec("fast", network=10.0 * fast_factor, rw=50.0 * fast_factor,
                  cpu_factor=fast_factor),
        make_spec("slow", network=10.0, rw=50.0),
    )
    return WorkflowRuntime(
        profile=profile,
        stream=stream,
        scheduler=make_bidding_policy(**policy_kwargs),
        config=quiet_config(),
    )


class TestWinnerSelection:
    def test_fast_worker_wins_cold_job(self):
        runtime = two_worker_runtime(arrivals(("j0", "r0", 100.0, 0.0)))
        runtime.run()
        assert runtime.master.assignments["j0"] == "fast"

    def test_cached_worker_wins_despite_being_slow(self):
        stream = arrivals(("j0", "hot", 100.0, 0.0))
        runtime = two_worker_runtime(stream)
        runtime.workers["slow"].cache.insert("hot", 100.0)
        runtime.run()
        # slow: 0 transfer + 2 s processing beats fast: 2.5 + 0.5.
        assert runtime.master.assignments["j0"] == "slow"
        assert runtime.metrics.total_cache_misses == 0

    def test_busy_cached_worker_loses_when_wait_exceeds_download(self):
        stream = arrivals(
            ("blocker", "big", 4000.0, 0.0),   # occupies slow for ~480 s
            ("j1", "hot", 10.0, 1.0),
        )
        runtime = two_worker_runtime(stream)
        runtime.workers["slow"].cache.insert("hot", 10.0)
        runtime.workers["slow"].cache.insert("big", 4000.0)
        runtime.run()
        # The paper: redundancy is allowed "only to accelerate overall
        # execution" -- fast re-downloads instead of waiting for slow.
        assert runtime.master.assignments["j1"] == "fast"

    def test_committed_workload_balances_wins(self):
        # Ten identical jobs: the fast worker must not win them all once
        # its queue cost exceeds the slow worker's idle estimate.
        stream = arrivals(
            *[(f"j{i}", f"r{i}", 100.0, 0.0) for i in range(10)]
        )
        runtime = two_worker_runtime(stream, fast_factor=2.0)
        result = runtime.run()
        jobs = result.per_worker_jobs
        assert jobs["fast"] > jobs["slow"] > 0


class TestContestAccounting:
    def test_every_job_gets_exactly_one_contest(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, float(i)) for i in range(8)])
        runtime = two_worker_runtime(stream)
        runtime.run()
        assert runtime.metrics.contests_opened == 8
        closed = (
            runtime.metrics.contests_closed_full
            + runtime.metrics.contests_closed_timeout
            + runtime.metrics.contests_fallback
        )
        assert closed == 8

    def test_full_close_when_all_workers_bid_promptly(self):
        stream = arrivals(("j0", "r0", 10.0, 0.0))
        runtime = two_worker_runtime(stream)
        runtime.run()
        assert runtime.metrics.contests_closed_full == 1
        assert runtime.metrics.contests_fallback == 0

    def test_contest_closes_early_before_window(self):
        stream = arrivals(("j0", "r0", 10.0, 0.0))
        runtime = two_worker_runtime(stream, window_s=100.0)
        result = runtime.run()
        # With a 100 s window the contest still closes in milliseconds.
        assert result.contest_seconds < 1.0

    def test_slow_bidders_force_timeout_close(self):
        stream = arrivals(("j0", "r0", 10.0, 0.0))
        # Bid computation takes 2 s at CPU factor 1 -> longer than the window.
        runtime = two_worker_runtime(stream, bid_compute_s=2.0, window_s=0.5)
        runtime.run()
        assert runtime.metrics.contests_fallback == 1

    def test_fallback_assigns_arbitrarily_but_completes(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, 0.0) for i in range(5)])
        runtime = two_worker_runtime(stream, bid_compute_s=5.0, window_s=0.1)
        result = runtime.run()
        assert result.jobs_completed == 5
        assert runtime.metrics.contests_fallback == 5

    def test_bids_recorded_per_worker(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 10.0, 0.0) for i in range(4)])
        runtime = two_worker_runtime(stream)
        runtime.run()
        for name in ("fast", "slow"):
            assert runtime.metrics.workers[name].bids_submitted == 4


class TestCommitmentLifecycle:
    def test_promised_cost_committed_and_released(self):
        stream = arrivals(("j0", "r0", 100.0, 0.0))
        runtime = two_worker_runtime(stream)
        runtime.run()
        for worker in runtime.workers.values():
            assert worker.committed_cost() == 0.0
            assert worker.unfinished == {}

    def test_no_rejections_ever(self):
        stream = arrivals(*[(f"j{i}", f"r{i % 3}", 50.0, float(i)) for i in range(9)])
        runtime = two_worker_runtime(stream)
        result = runtime.run()
        # "no job needs to be rejected by all workers before being processed"
        assert result.rejections == 0


class TestConfigValidation:
    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            make_bidding_policy(window_s=0.0).make_master()

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ValueError):
            make_bidding_policy(max_concurrent_contests=0).make_master()

    def test_invalid_bid_compute_rejected(self):
        with pytest.raises(ValueError):
            make_bidding_policy(bid_compute_s=-1.0).make_worker()


class TestSpeedLearning:
    def test_historic_model_runs_and_completes(self):
        stream = arrivals(*[(f"j{i}", f"r{i}", 50.0, float(i)) for i in range(6)])
        profile = make_profile(make_spec("w1"), make_spec("w2"))
        runtime = WorkflowRuntime(
            profile=profile,
            stream=stream,
            scheduler=make_bidding_policy(
                speed_model_factory=HistoricAverageSpeedModel, bid_compute_s=0.0
            ),
            config=quiet_config(noise_kind="lognormal", noise_params={"sigma": 0.3}),
        )
        result = runtime.run()
        assert result.jobs_completed == 6
        # Learning happened: measured samples were recorded beyond the seed.
        assert any(
            len(worker.machine._network_samples) > 1
            for worker in runtime.workers.values()
        )
