"""Exporters: golden Perfetto fixture, time-series dumps, timeline view."""

import csv
import json
from pathlib import Path

from regen_golden_perfetto import golden_runtime, record
from repro.obs import (
    build_spans,
    perfetto_trace,
    render_timeline,
    timeseries_rows,
    write_perfetto,
    write_timeseries_csv,
    write_timeseries_json,
)

GOLDEN = Path(__file__).parent / "golden_perfetto.json"


class TestGoldenPerfetto:
    def test_fixture_matches_current_code(self):
        """The committed fixture pins the exporter byte-for-byte (as JSON
        values).  Deliberate changes re-record via
        ``python tests/regen_golden_perfetto.py``."""
        committed = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert committed == record()

    def test_fixture_is_loadable_trace_event_json(self):
        document = json.loads(GOLDEN.read_text(encoding="utf-8"))
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in events}
        assert "M" in phases and "X" in phases and "C" in phases
        # Metadata names every track exactly once.
        threads = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        names = [e["args"]["name"] for e in threads]
        assert names[0] == "master"
        assert {"w1", "w2", "broker", "faults"} <= set(names)
        assert len(names) == len(set(names))
        # Complete events are well-formed: numeric ts/dur, known tids.
        tids = {e["tid"] for e in threads}
        for event in events:
            if event["ph"] == "X":
                assert event["tid"] in tids
                assert event["ts"] >= 0
                assert event["dur"] >= 0

    def test_span_events_link_parents(self):
        document = json.loads(GOLDEN.read_text(encoding="utf-8"))
        span_events = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and "span_id" in e.get("args", {})
        ]
        ids = {e["args"]["span_id"] for e in span_events}
        for event in span_events:
            parent = event["args"].get("parent_id")
            if parent is not None:
                assert parent in ids


class TestWriters:
    def test_write_perfetto_round_trips(self, tmp_path):
        runtime = golden_runtime()
        runtime.run()
        trace = runtime.metrics.trace
        out = tmp_path / "trace.json"
        write_perfetto(
            out,
            trace,
            spans=build_spans(trace),
            probes=runtime.obs.probes,
            flows=runtime.obs.flows,
            label="golden",
        )
        assert json.loads(out.read_text(encoding="utf-8")) == perfetto_trace(
            trace,
            spans=build_spans(trace),
            probes=runtime.obs.probes,
            flows=runtime.obs.flows,
            label="golden",
        )

    def test_timeseries_csv_and_json(self, tmp_path):
        runtime = golden_runtime()
        runtime.run()
        probes = runtime.obs.probes
        rows = timeseries_rows(probes)
        assert rows and all(len(row) == 3 for row in rows)

        csv_path = tmp_path / "probes.csv"
        write_timeseries_csv(csv_path, probes)
        with open(csv_path, newline="", encoding="utf-8") as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0] == ["probe", "time_s", "value"]
        assert len(parsed) == len(rows) + 1

        json_path = tmp_path / "probes.json"
        write_timeseries_json(json_path, probes)
        document = json.loads(json_path.read_text(encoding="utf-8"))
        assert set(document) == set(probes.names())
        for name, series in document.items():
            assert len(series["times"]) == len(series["values"])

    def test_flows_recorded_with_latency(self):
        runtime = golden_runtime()
        runtime.run()
        flows = list(runtime.obs.flows)
        assert flows
        for flow in flows:
            assert flow.delivered_at >= flow.published_at
            assert flow.topic and flow.message


class TestTimeline:
    def test_render_timeline_sections(self):
        runtime = golden_runtime()
        result = runtime.run()
        text = render_timeline(
            runtime.metrics.trace,
            result.makespan_s,
            probes=runtime.obs.probes,
            title="golden run",
        )
        assert text.startswith("golden run")
        assert "workers (# busy, . idle):" in text
        assert "probes:" in text
        assert "w1" in text and "w2" in text

    def test_timeline_without_probes(self):
        runtime = golden_runtime()
        result = runtime.run()
        text = render_timeline(runtime.metrics.trace, result.makespan_s)
        assert "probes:" not in text
