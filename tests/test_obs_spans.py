"""Span-tree construction, coverage, and the live SpanContext round-trip."""

import pytest

from repro.experiments.runner import CellSpec, run_cell_observed
from repro.metrics.trace import Trace
from repro.obs import (
    FLEET,
    Span,
    SpanContext,
    build_spans,
    span_coverage,
)


def synthetic_trace() -> Trace:
    """One bidding-style job lifecycle plus an offer-style one."""
    trace = Trace()
    # j1: contested, assigned, downloaded, executed.
    trace.record(0.0, "submitted", "j1")
    trace.record(0.1, "announced", "j1")
    trace.record(0.3, "bid", "j1", "w1", 5.0)
    trace.record(0.4, "bid", "j1", "w2", 9.0)
    trace.record(1.1, "contest_closed", "j1", "w1", "w1")
    trace.record(1.1, "assigned", "j1", "w1")
    trace.record(1.5, "started", "j1", "w1")
    trace.record(1.5, "download_started", "j1", "w1")
    trace.record(3.0, "download_finished", "j1", "w1", 30.0)
    trace.record(6.0, "completed", "j1", "w1")
    # j2: offered, rejected once, accepted, executed without a download.
    trace.record(0.5, "submitted", "j2")
    trace.record(0.6, "offered", "j2", "w2")
    trace.record(0.8, "rejected", "j2", "w2")
    trace.record(0.9, "offered", "j2", "w1")
    trace.record(1.2, "accepted", "j2", "w1")
    trace.record(1.2, "assigned", "j2", "w1")
    trace.record(6.0, "started", "j2", "w1")
    trace.record(8.0, "completed", "j2", "w1")
    return trace


class TestBuildSpans:
    def test_job_roots_and_children(self):
        spans = build_spans(synthetic_trace())
        by_name = {}
        for span in spans:
            by_name.setdefault((span.trace_id, span.name), []).append(span)

        root = by_name[("j1", "job")][0]
        assert root.parent_id is None
        assert root.start == 0.0 and root.end == 6.0
        assert root.attr("status") == "completed"

        schedule = by_name[("j1", "schedule")][0]
        assert schedule.parent_id == root.span_id
        assert schedule.end == 1.1

        contest = by_name[("j1", "contest")][0]
        assert contest.parent_id == schedule.span_id
        assert contest.attr("bids") == 2
        assert contest.attr("winner") == "w1"

        execute = by_name[("j1", "execute")][0]
        assert execute.parent_id == root.span_id
        assert execute.track == "w1"
        assert execute.start == 1.5 and execute.end == 6.0

        transfer = by_name[("j1", "transfer")][0]
        assert transfer.parent_id == execute.span_id
        assert transfer.attr("mb") == 30.0

    def test_offer_spans_pair_with_their_outcomes(self):
        spans = build_spans(synthetic_trace())
        offers = [s for s in spans if s.trace_id == "j2" and s.name == "offer"]
        assert [(o.attr("worker"), o.attr("outcome")) for o in offers] == [
            ("w2", "rejected"),
            ("w1", "accepted"),
        ]
        assert offers[0].end == 0.8 and offers[1].end == 1.2

    def test_span_ids_unique_and_sequential(self):
        spans = build_spans(synthetic_trace())
        ids = [span.span_id for span in spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_prefetch_transfer_parents_under_root(self):
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        trace.record(0.0, "assigned", "j1", "w1")
        # Prefetch finishes before the job starts running.
        trace.record(0.1, "download_started", "j1", "w1")
        trace.record(0.9, "download_finished", "j1", "w1", 10.0)
        trace.record(2.0, "started", "j1", "w1")
        trace.record(3.0, "completed", "j1", "w1")
        spans = build_spans(trace)
        root = next(s for s in spans if s.name == "job")
        transfer = next(s for s in spans if s.name == "transfer")
        assert transfer.parent_id == root.span_id

    def test_recovery_span_for_orphaned_job(self):
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        trace.record(0.2, "assigned", "j1", "w1")
        trace.record(1.0, "orphaned", "j1", "w1")
        trace.record(2.5, "redispatched", "j1", "w2")
        trace.record(3.0, "started", "j1", "w2")
        trace.record(5.0, "completed", "j1", "w2")
        spans = build_spans(trace)
        recovery = next(s for s in spans if s.name == "recovery")
        assert recovery.start == 1.0 and recovery.end == 2.5
        assert recovery.attr("lost_worker") == "w1"

    def test_open_job_clamped_to_horizon(self):
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        trace.record(1.0, "assigned", "j1", "w1")
        trace.record(2.0, "started", "j1", "w1")
        trace.record(9.0, "submitted", "j2")  # horizon extender
        spans = build_spans(trace)
        root = next(s for s in spans if s.trace_id == "j1" and s.name == "job")
        assert root.attr("status") == "open"
        assert root.end == 9.0

    def test_fleet_events_do_not_create_jobs(self):
        trace = Trace()
        trace.record(0.0, "fault_crash", FLEET, "w1")
        trace.record(0.5, "submitted", "j1")
        trace.record(1.0, "completed", "j1", "w1")
        spans = build_spans(trace)
        assert {span.trace_id for span in spans} == {"j1"}

    def test_empty_trace(self):
        assert build_spans(Trace()) == []


class TestSpanCoverage:
    def test_full_coverage_on_connected_tree(self):
        trace = synthetic_trace()
        coverage = span_coverage(trace)
        assert coverage.completed_jobs == 2
        assert coverage.connected_jobs == 2
        assert coverage.fraction == 1.0
        assert coverage.disconnected == ()

    def test_missing_execute_breaks_coverage(self):
        trace = Trace()
        trace.record(0.0, "submitted", "j1")
        trace.record(1.0, "started", "j1", "w1")
        # completed is recorded but the execute span cannot reach it:
        # drop the completion by cutting the trace after `started` and
        # appending a completion far past the horizon of the built spans.
        trace.record(2.0, "completed", "j1", "w1")
        spans = build_spans(trace)
        # Sabotage: remove the execute span to simulate a broken tree.
        spans = [s for s in spans if s.name != "execute"]
        coverage = span_coverage(trace, spans)
        assert coverage.connected_jobs == 0
        assert coverage.disconnected == ("j1",)

    def test_empty_trace_counts_as_full(self):
        assert span_coverage(Trace()).fraction == 1.0


class TestSpanContext:
    def test_frozen_and_comparable(self):
        a = SpanContext(trace_id="j1", span_id=1)
        b = SpanContext(trace_id="j1", span_id=1)
        assert a == b
        with pytest.raises(Exception):
            a.span_id = 2  # type: ignore[misc]


class TestAcceptance:
    """ISSUE acceptance: a fixed-seed full-cell traced run must produce a
    span tree covering every completed job end to end.

    Push-style schedulers (the master calls ``assign`` directly) thread
    the :class:`SpanContext` through the assignment itself, so their
    coverage is pinned at exactly 100% -- any regression is a broken
    context hand-off, not noise.  Pull-style schedulers reach the same
    seam via ``note_external_assignment``; their floor is pinned
    separately below so a push-path refactor cannot silently eat the
    pull path's coverage (or vice versa).
    """

    @pytest.mark.parametrize("scheduler", ["bidding", "spark"])
    def test_push_span_coverage_is_total(self, scheduler):
        spec = CellSpec(
            scheduler=scheduler,
            workload="80%_small",
            profile="fast-slow",
            seed=7,
            iterations=1,
            engine_overrides=(("trace", True), ("obs", True)),
        )
        results, runtime = run_cell_observed(spec)
        trace = runtime.metrics.trace
        coverage = span_coverage(trace)
        assert coverage.completed_jobs == results[-1].jobs_completed
        assert coverage.fraction == 1.0, coverage.disconnected[:5]

    @pytest.mark.parametrize("scheduler", ["baseline", "matchmaking"])
    def test_pull_span_coverage_floor(self, scheduler):
        # Regression pin at the measured floor (currently also total);
        # lower this only with an explanation of what was lost.
        spec = CellSpec(
            scheduler=scheduler,
            workload="80%_small",
            profile="fast-slow",
            seed=7,
            iterations=1,
            engine_overrides=(("trace", True), ("obs", True)),
        )
        results, runtime = run_cell_observed(spec)
        trace = runtime.metrics.trace
        coverage = span_coverage(trace)
        assert coverage.completed_jobs == results[-1].jobs_completed
        assert coverage.fraction >= 1.0, coverage.disconnected[:5]

    def test_ctx_round_trip_on_push_scheduler(self):
        spec = CellSpec(
            scheduler="bidding",
            workload="80%_small",
            profile="fast-slow",
            seed=7,
            iterations=1,
            engine_overrides=(("trace", True), ("obs", True)),
        )
        results, runtime = run_cell_observed(spec)
        completed = results[-1].jobs_completed
        # Every assignment context must come back intact on completion.
        assert runtime.obs.ctx_round_trips() == completed
        assert len(runtime.obs.assignment_ctxs) == completed
