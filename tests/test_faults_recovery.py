"""FaultPlan-driven crash injection and the master's recovery protocol.

Complements ``test_failure_injection.py`` (direct ``kill()`` calls with
the ``fault_tolerance`` flag) by exercising the declarative path: a
:class:`FaultPlan` executed by the injector, restarts, per-seed
determinism, the explicit-failure paper default, and the at-most-once
completion guard under straggler re-dispatch.
"""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime, WorkflowStalled
from repro.faults import CrashRenewal, FaultPlan, RecoveryConfig, WorkerCrash
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import SCHEDULERS, make_scheduler
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER

pytestmark = pytest.mark.faults


def stream_of(n=8, size=50.0):
    return JobStream(
        arrivals=[
            JobArrival(
                at=float(i),
                job=Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=size),
            )
            for i in range(n)
        ]
    )


def build_runtime(
    scheduler="bidding",
    faults=None,
    allow_partial=False,
    specs=None,
    stream=None,
    seed=0,
    max_sim_time=5000.0,
):
    return WorkflowRuntime(
        profile=make_profile(*(specs or (make_spec("w1"), make_spec("w2"), make_spec("w3")))),
        stream=stream if stream is not None else stream_of(),
        scheduler=make_scheduler(scheduler),
        config=EngineConfig(
            seed=seed,
            noise_kind="none",
            noise_params={},
            topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
            max_sim_time=max_sim_time,
        ),
        faults=faults,
        allow_partial=allow_partial,
    )


CRASH_AND_RESTART = FaultPlan(
    crashes=(WorkerCrash(at_s=2.0, worker="w1", restart_after_s=5.0),),
    recovery=RecoveryConfig(max_redispatches=5, backoff_base_s=0.1),
)


class TestRecoveryAcrossSchedulers:
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_crash_with_recovery_completes_everything(self, scheduler):
        runtime = build_runtime(scheduler=scheduler, faults=CRASH_AND_RESTART)
        result = runtime.run()
        assert result.jobs_completed == 8
        assert result.failed_jobs == ()
        assert result.crashes == 1
        assert runtime.metrics.workers_restarted == 1

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_orphans_are_reported(self, scheduler):
        # No restart: the two survivors must absorb whatever w1 held.
        plan = FaultPlan(
            crashes=(WorkerCrash(at_s=2.0, worker="w1"),),
            recovery=RecoveryConfig(max_redispatches=5, backoff_base_s=0.1),
        )
        runtime = build_runtime(scheduler=scheduler, faults=plan)
        result = runtime.run()
        assert result.jobs_completed == 8
        # Every orphan that existed was re-dispatched, and the counters agree.
        assert result.redispatches >= runtime.metrics.jobs_orphaned - len(
            result.failed_jobs
        )
        assert runtime.metrics.jobs_failed == 0

    def test_bidding_orphans_actually_redispatch(self):
        # Under bidding, w1 holds work at t=2 (same setup as the direct
        # kill() tests), so the crash must produce real re-dispatches.
        runtime = build_runtime(scheduler="bidding", faults=CRASH_AND_RESTART)
        result = runtime.run()
        assert runtime.metrics.jobs_orphaned >= 1
        assert result.redispatches >= 1


class TestPaperDefault:
    def test_crash_without_recovery_raises(self):
        plan = FaultPlan(crashes=(WorkerCrash(at_s=2.0, worker="w1"),), recovery=None)
        runtime = build_runtime(scheduler="bidding", faults=plan)
        with pytest.raises(WorkflowStalled, match="did not complete"):
            runtime.run()
        assert runtime.master.failed_jobs

    def test_allow_partial_reports_instead(self):
        plan = FaultPlan(crashes=(WorkerCrash(at_s=2.0, worker="w1"),), recovery=None)
        runtime = build_runtime(scheduler="bidding", faults=plan, allow_partial=True)
        result = runtime.run()
        assert result.failed_jobs
        assert result.jobs_completed + len(result.failed_jobs) == 8
        assert result.redispatches == 0


class TestDeterminism:
    RENEWAL_PLAN = FaultPlan(
        renewals=(CrashRenewal(mtbf_s=15.0, mttr_s=10.0),),
        recovery=RecoveryConfig(max_redispatches=8, backoff_base_s=0.1),
    )

    def run_once(self, seed):
        runtime = build_runtime(scheduler="bidding", faults=self.RENEWAL_PLAN, seed=seed)
        result = runtime.run()
        return runtime, result

    def test_same_seed_same_injection_schedule_and_metrics(self):
        first_rt, first = self.run_once(seed=7)
        second_rt, second = self.run_once(seed=7)
        assert first_rt.injector.events == second_rt.injector.events
        assert first.makespan_s == second.makespan_s
        assert first.crashes == second.crashes
        assert first.redispatches == second.redispatches
        assert first.failed_jobs == second.failed_jobs

    def test_different_seed_different_schedule(self):
        first_rt, _ = self.run_once(seed=7)
        second_rt, _ = self.run_once(seed=8)
        assert first_rt.injector.events != second_rt.injector.events


class TestAtMostOnceGuard:
    def test_straggler_redispatch_suppresses_duplicate_completion(self):
        # w1 is so slow the straggler monitor re-dispatches its job to
        # w2; when w1 eventually finishes too, the late completion must
        # be absorbed, not double-counted.
        plan = FaultPlan(
            recovery=RecoveryConfig(
                max_redispatches=3, backoff_base_s=0.0, redispatch_timeout_s=30.0
            ),
        )
        runtime = build_runtime(
            scheduler="round-robin",
            faults=plan,
            specs=(make_spec("w1", network=0.05), make_spec("w2")),
            stream=stream_of(n=1),
            max_sim_time=50_000.0,
        )
        result = runtime.run()
        assert result.jobs_completed == 1
        assert result.redispatches >= 1
        # Let the original, still-downloading assignment run to its end.
        runtime.sim.run(until=runtime.sim.now + 20_000.0)
        assert runtime.metrics.duplicates_suppressed == 1
        assert runtime.metrics.jobs_completed == 1
