"""Tests for the experiment harness (small-scale figure/table runs)."""

import pytest

from repro.experiments import fig2_spark, fig3_aggregates, fig4_breakdown, tables_msr
from repro.experiments.configs import (
    EVALUATION_SEEDS,
    ITERATIONS,
    JOB_CONFIG_NAMES,
    PROFILE_NAMES,
    default_engine_config,
)
from repro.experiments.runner import (
    CellSpec,
    ResultSet,
    expand_matrix,
    run_cell,
    run_matrix,
)


class TestConfigs:
    def test_matrix_dimensions_match_paper(self):
        assert len(PROFILE_NAMES) == 4
        assert len(JOB_CONFIG_NAMES) == 5
        assert ITERATIONS == 3

    def test_engine_config_disables_trace_for_bulk_runs(self):
        assert default_engine_config(1).trace is False


class TestCellSpec:
    def test_with_scheduler_kwargs_merges(self):
        spec = CellSpec(scheduler="bidding", workload="80%_large", profile="all-equal", seed=1)
        updated = spec.with_scheduler_kwargs(window_s=0.5)
        updated = updated.with_scheduler_kwargs(window_s=2.0, bid_compute_s=0.0)
        kwargs = dict(updated.scheduler_kwargs)
        assert kwargs == {"window_s": 2.0, "bid_compute_s": 0.0}

    def test_run_cell_returns_one_result_per_iteration(self):
        spec = CellSpec(
            scheduler="round-robin",
            workload="80%_small",
            profile="all-equal",
            seed=11,
            iterations=2,
        )
        results = run_cell(spec)
        assert [r.iteration for r in results] == [0, 1]

    def test_keep_cache_false_stays_cold(self):
        spec = CellSpec(
            scheduler="bidding",
            workload="all_diff_small",
            profile="all-equal",
            seed=11,
            iterations=2,
            keep_cache=False,
        )
        results = run_cell(spec)
        assert results[0].cache_misses == results[1].cache_misses == 120


class TestMatrix:
    def test_expand_matrix_cross_product(self):
        cells = expand_matrix(
            schedulers=["a", "b"],
            workloads=["w1", "w2", "w3"],
            profiles=["p"],
            seeds=[1, 2],
        )
        assert len(cells) == 2 * 3 * 1 * 2

    def test_scheduler_kwargs_only_apply_to_named(self):
        cells = expand_matrix(
            schedulers=["baseline", "spark"],
            workloads=["w"],
            profiles=["p"],
            seeds=[1],
            scheduler_kwargs={"spark": {"use_locality": False}},
        )
        by_scheduler = {cell.scheduler: cell for cell in cells}
        assert by_scheduler["spark"].scheduler_kwargs == (("use_locality", False),)
        assert by_scheduler["baseline"].scheduler_kwargs == ()

    def test_run_matrix_parallel_matches_serial(self):
        cells = expand_matrix(
            schedulers=["round-robin"],
            workloads=["80%_small"],
            profiles=["all-equal"],
            seeds=[11, 23],
            iterations=1,
        )
        serial = run_matrix(cells, parallel=1)
        parallel = run_matrix(cells, parallel=2)
        assert [r.makespan_s for r in serial] == [r.makespan_s for r in parallel]


class TestResultSet:
    def test_filters_and_means(self):
        cells = expand_matrix(
            schedulers=["baseline", "bidding"],
            workloads=["80%_small"],
            profiles=["all-equal"],
            seeds=[11],
            iterations=2,
        )
        results = ResultSet(run_matrix(cells))
        assert len(results.where(scheduler="bidding")) == 2
        assert len(results.where(scheduler="bidding", iteration=0)) == 1
        assert results.mean_makespan(scheduler="bidding") > 0

    def test_empty_filter_raises(self):
        results = ResultSet([])
        with pytest.raises(ValueError):
            results.mean_makespan(scheduler="nobody")


class TestFigureModules:
    """Scaled-down versions of each figure run end-to-end."""

    def test_fig3_small(self):
        result = fig3_aggregates.run_fig3(
            seeds=(11,), profiles=("all-equal",), workloads=("80%_small",), iterations=2
        )
        row = result.row("80%_small")
        assert row.baseline_time_s > 0
        assert row.bidding_time_s > 0
        rendered = fig3_aggregates.render(result)
        assert "Figure 3a" in rendered and "80%_small" in rendered

    def test_fig3_unknown_row_raises(self):
        result = fig3_aggregates.run_fig3(
            seeds=(11,), profiles=("all-equal",), workloads=("80%_small",), iterations=1
        )
        with pytest.raises(KeyError):
            result.row("nonexistent")

    def test_fig2_small(self):
        result = fig2_spark.run_fig2(seeds=(11,), iterations=1)
        assert len(result.groups) == 4
        g1 = result.group("G1")
        assert g1.spark_time_s > g1.crossflow_time_s  # straggler effect
        rendered = fig2_spark.render(result)
        assert "spark slower by" in rendered

    def test_fig4_small(self):
        result = fig4_breakdown.run_fig4(
            seeds=(11,),
            profiles=("all-equal", "one-slow"),
            workloads=("80%_small",),
            iterations=2,
        )
        assert len(result.cells) == 2
        cell = result.cell("80%_small", "one-slow")
        assert cell.speedup > 0
        assert result.best_vs_centralized > 0
        rendered = fig4_breakdown.render(result)
        assert "Figure 4" in rendered

    def test_tables_msr_structure(self):
        tables = tables_msr.run_tables(seeds=(101,))
        assert tables.runs == 1
        bidding_time, baseline_time = tables.time_row(0)
        assert bidding_time > 0 and baseline_time > 0
        bidding_mb, baseline_mb = tables.data_row(0)
        assert bidding_mb < baseline_mb  # the headline Table 2 direction
        bidding_miss, baseline_miss = tables.miss_row(0)
        assert bidding_miss < baseline_miss
        rendered = tables_msr.render(tables)
        assert "Table 1" in rendered and "Table 3" in rendered


class TestCLI:
    def test_run_subcommand(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--scheduler",
                "round-robin",
                "--workload",
                "80%_small",
                "--profile",
                "all-equal",
                "--seed",
                "11",
                "--iterations",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "round-robin" in out

    def test_unknown_scheduler_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "--scheduler", "psychic"])

    def test_requires_subcommand(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([])
