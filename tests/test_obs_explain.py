"""Explain documents and the run-diff explainer (ISSUE acceptance)."""

import pytest

from repro.experiments.runner import CellSpec, run_cell_observed
from repro.obs import (
    ObsConfig,
    diff_runs,
    explain_document,
    explain_job,
    load_explain,
    render_diff,
    write_explain,
)


def explained_run(scheduler, seed=7, workload="80%_small", profile="fast-slow"):
    spec = CellSpec(
        scheduler=scheduler,
        workload=workload,
        profile=profile,
        seed=seed,
        iterations=1,
        engine_overrides=(("trace", True), ("obs", ObsConfig())),
    )
    results, runtime = run_cell_observed(spec)
    document = explain_document(
        runtime.metrics.trace,
        ledger=runtime.obs.ledger,
        meta={"scheduler": scheduler, "seed": seed},
    )
    return results[-1], document


@pytest.fixture(scope="module")
def two_runs():
    """Two fixed-seed runs of the same scenario under two schedulers."""
    result_a, doc_a = explained_run("bidding")
    result_b, doc_b = explained_run("spark")
    return result_a, doc_a, result_b, doc_b


class TestDocument:
    def test_document_shape_and_tiling(self, two_runs):
        result, document, _, _ = two_runs
        assert document["schema"] == 1
        assert document["meta"]["scheduler"] == "bidding"
        assert len(document["jobs"]) == result.jobs_completed
        assert len(document["decisions"]) == result.jobs_completed
        # Every per-job breakdown tiles that job's latency exactly.
        for job_id, job in document["jobs"].items():
            assert sum(job["categories"].values()) == pytest.approx(
                job["finished"] - job["submitted"], abs=1e-9
            )
        # ... and the chain categories tile the makespan.
        assert sum(document["categories"].values()) == pytest.approx(
            document["makespan_s"], abs=1e-9
        )

    def test_round_trip_through_disk(self, two_runs, tmp_path):
        _, document, _, _ = two_runs
        path = tmp_path / "run.json"
        write_explain(path, document)
        assert load_explain(path) == document

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 999}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_explain(path)

    def test_empty_trace_rejected(self):
        from repro.metrics.trace import Trace

        with pytest.raises(ValueError):
            explain_document(Trace())


class TestDiffAcceptance:
    """ISSUE acceptance: per-category deltas sum to the true makespan
    difference (within 1e-6) and every moved category names at least one
    divergent DecisionRecord."""

    def test_category_deltas_sum_to_makespan_delta(self, two_runs):
        result_a, doc_a, result_b, doc_b = two_runs
        diff = diff_runs(doc_a, doc_b)
        true_delta = result_b.makespan_s - result_a.makespan_s
        assert diff.delta == pytest.approx(true_delta, abs=1e-9)
        assert sum(diff.categories.values()) == pytest.approx(true_delta, abs=1e-6)

    def test_each_moved_category_names_a_divergent_decision(self, two_runs):
        _, doc_a, _, doc_b = two_runs
        diff = diff_runs(doc_a, doc_b)
        assert diff.divergent_jobs  # two schedulers must place differently
        moved = [name for name, delta in diff.categories.items() if abs(delta) > 1e-9]
        assert moved  # a 5x makespan gap moves time somewhere
        findings = {finding.category: finding for finding in diff.findings}
        for name in moved:
            finding = findings[name]
            assert finding.job_id in diff.divergent_jobs
            assert finding.decision_a is not None
            assert finding.decision_b is not None
            assert finding.decision_a.worker != finding.decision_b.worker
            assert finding.decision_a.policy == "bidding"
            assert finding.decision_b.policy == "spark"

    def test_same_run_diffs_to_zero(self, two_runs):
        _, doc_a, _, _ = two_runs
        diff = diff_runs(doc_a, doc_a)
        assert diff.delta == 0.0
        assert diff.divergent_jobs == ()
        assert diff.findings == ()
        assert all(delta == 0.0 for delta in diff.categories.values())

    def test_render_names_decisions(self, two_runs):
        _, doc_a, _, doc_b = two_runs
        diff = diff_runs(doc_a, doc_b)
        text = render_diff(diff)
        assert "run diff" in text
        assert "bidding/seed7" in text and "spark/seed7" in text
        for finding in diff.findings:
            assert finding.category in text
            if finding.job_id is not None:
                assert finding.job_id in text


class TestExplainJob:
    def test_narrates_the_decision_and_the_breakdown(self, two_runs):
        _, document, _, _ = two_runs
        # The chain's last job is always present and on the critical path.
        job_id = document["chain"][-1]
        text = explain_job(document, job_id)
        assert f"job {job_id}" in text
        assert "bidding ->" in text
        assert "latency" in text
        assert "(on the critical path)" in text

    def test_cache_hit_narrative_appears_somewhere(self, two_runs):
        # The ISSUE's exemplar sentence shape: a bidding run on a shared
        # repo must contain at least one "cache hit ... saved est." story.
        _, document, _, _ = two_runs
        stories = [
            explain_job(document, job_id) for job_id in document["jobs"]
        ]
        assert any("cache hit on repo" in story for story in stories)

    def test_unknown_job(self, two_runs):
        _, document, _, _ = two_runs
        assert "no trace of this job" in explain_job(document, "nope")
