"""The real coordinator against real OS processes.

Hand-built two-worker plans with wide timing margins: worker ``a``
carries deliberately slow jobs (scaled compute sleeps), worker ``b``
near-instant ones, so races between "b finishes its burst" and "a is
still grinding" resolve the same way on any machine.
"""

import threading
import time

import pytest

from repro.exec.plan import Decision, ExecPlan, PlanJob, PlanWorker
from repro.exec.pool import ExecBackend, ExecConfig, ExecError, KillSpec
from repro.exec.protocol import ControlClient, ProtocolError

TIME_SCALE = 0.002
FAST_SPEC = dict(network_mbps=1000.0, rw_mbps=1000.0, cpu_factor=1.0, link_latency=0.0)
#: 100 simulated compute-seconds -> 0.2 wall-seconds at TIME_SCALE.
SLOW_COMPUTE_S = 100.0


def hand_plan(slow_on_a=2, fast_on_b=2, preload_b=()):
    """``slow_on_a`` jobs pinned to ``a`` (0.2 s wall each), ``fast_on_b``
    near-instant jobs pinned to ``b``; decisions interleave a-first."""
    workers = (
        PlanWorker(name="a", **FAST_SPEC),
        PlanWorker(name="b", **FAST_SPEC, preload=tuple(preload_b)),
    )
    jobs = []
    decisions = []
    seq = 0
    for i in range(slow_on_a):
        jobs.append(
            PlanJob(
                job_id=f"a{i}",
                task="t",
                repo_id="ra",
                size_mb=2.0,
                base_compute_s=SLOW_COMPUTE_S,
                handler="noop",
            )
        )
        decisions.append(Decision(seq=seq, job_id=f"a{i}", worker="a", at_s=0.0))
        seq += 1
    for i in range(fast_on_b):
        jobs.append(
            PlanJob(job_id=f"b{i}", task="t", repo_id="rb", size_mb=1.0, handler="noop")
        )
        decisions.append(Decision(seq=seq, job_id=f"b{i}", worker="b", at_s=0.0))
        seq += 1
    return ExecPlan(
        scheduler="hand",
        seed=0,
        workers=workers,
        jobs=tuple(jobs),
        decisions=tuple(decisions),
    )


def config(**overrides):
    base = dict(time_scale=TIME_SCALE, run_timeout_s=60.0, trace=False)
    base.update(overrides)
    return ExecConfig(**base)


class TestCleanRun:
    def test_plan_is_preserved_on_real_processes(self):
        plan = hand_plan(slow_on_a=2, fast_on_b=3)
        backend = ExecBackend(plan, config())
        report = backend.run()

        assert report.conserved
        assert report.admitted == report.completed == 5
        assert report.failed == report.crashes == 0
        assert report.redispatches == report.duplicates_suppressed == 0
        # The assignment log IS the plan, nothing re-dispatched.
        assert report.assigned == tuple(
            (d.job_id, d.worker, False) for d in plan.decisions
        )
        # Per-worker completion order follows plan order (FIFO workers).
        assert report.per_worker_completed == {
            name: tuple(ids) for name, ids in plan.per_worker_order().items()
        }
        # Each worker misses its repo once, then hits it.
        assert report.per_worker_cache == {"a": (1, 1), "b": (2, 1)}
        assert report.cache_hits == 3 and report.cache_misses == 2
        assert report.data_load_mb == pytest.approx(2.0 + 1.0)
        assert report.wall_s > 0 and report.throughput_jobs_per_s > 0

    def test_preload_makes_the_first_touch_a_hit(self):
        plan = hand_plan(slow_on_a=0, fast_on_b=2, preload_b=(("rb", 1.0),))
        report = ExecBackend(plan, config()).run()
        assert report.per_worker_cache["b"] == (2, 0)
        assert report.data_load_mb == 0.0


class TestFaults:
    def test_sigkill_mid_run_loses_no_jobs(self):
        # b's two instant jobs complete first; the kill then fires while
        # a is still grinding its first slow job, orphaning all three.
        plan = hand_plan(slow_on_a=3, fast_on_b=2)
        backend = ExecBackend(plan, config(), kills=(KillSpec("a", after_done=2),))
        report = backend.run()

        assert report.crashes == 1
        assert report.conserved
        assert report.completed == 5 and report.failed == 0
        assert report.redispatches == 3
        # The orphans re-homed onto the survivor and finished there.
        redispatched = [j for j, w, r in report.assigned if r]
        assert sorted(redispatched) == ["a0", "a1", "a2"]
        assert all(w == "b" for j, w, r in report.assigned if r)

    def test_wedged_worker_is_evicted_by_missed_heartbeats(self):
        # a executes one fast job, then wedges silently (no DONE, no
        # beats); the watchdog evicts it and its jobs re-home to b.
        plan = hand_plan(slow_on_a=0, fast_on_b=2)
        wedge_jobs = tuple(
            PlanJob(job_id=f"w{i}", task="t", repo_id="ra", size_mb=1.0, handler="noop")
            for i in range(2)
        )
        plan = ExecPlan(
            scheduler="hand",
            seed=0,
            workers=plan.workers,
            jobs=plan.jobs + wedge_jobs,
            decisions=plan.decisions
            + tuple(
                Decision(seq=2 + i, job_id=f"w{i}", worker="a", at_s=0.0)
                for i in range(2)
            ),
        )
        backend = ExecBackend(
            plan,
            config(heartbeat_s=0.1, miss_limit=3, stall_after=(("a", 1),)),
        )
        report = backend.run()

        assert report.crashes == 1
        assert report.conserved
        assert report.completed == 4 and report.failed == 0
        assert report.duplicates_suppressed == 0
        assert report.redispatches == 2
        assert report.per_worker_completed["a"] == ()

    def test_kill_targeting_unknown_worker_is_rejected_up_front(self):
        with pytest.raises(ExecError, match="unknown worker 'ghost'"):
            ExecBackend(hand_plan(), config(), kills=(KillSpec("ghost", 1),))


class TestScriptedControl:
    def test_drain_rehomes_the_undelivered_backlog(self):
        # a: 4 slow jobs, in-flight cap 1 -> 3 sit in its ready queue.
        # b's instant job completes first and trips the drain script.
        plan = hand_plan(slow_on_a=4, fast_on_b=1)
        backend = ExecBackend(
            plan,
            config(inflight_per_worker=1),
            script=((1, {"type": "drain", "worker": "a"}),),
        )
        report = backend.run()

        assert report.conserved
        assert report.completed == 5 and report.failed == 0
        assert backend.workers["a"].draining
        # The in-flight job finished on a; the queued three moved to b.
        assert report.per_worker_completed["a"] == ("a0",)
        assert report.redispatches == 3
        moved = [j for j, w, r in report.assigned if r]
        assert sorted(moved) == ["a1", "a2", "a3"]

    def test_rebind_moves_one_queued_job(self):
        plan = hand_plan(slow_on_a=3, fast_on_b=1)
        backend = ExecBackend(
            plan,
            config(inflight_per_worker=1),
            script=((1, {"type": "rebind", "job_id": "a2", "worker": "b"}),),
        )
        report = backend.run()

        assert report.conserved and report.completed == 4
        assert ("a2", "b", True) in report.assigned
        assert "a2" in report.per_worker_completed["b"]
        assert report.per_worker_completed["a"] == ("a0", "a1")


class TestControlSocket:
    def test_live_stats_dispatch_and_error_replies(self):
        # Enough slow work on a to keep the pool alive while the client
        # talks to it (4 x 0.2 s wall).
        plan = hand_plan(slow_on_a=4, fast_on_b=0)
        backend = ExecBackend(plan, config(inflight_per_worker=1))
        runner = threading.Thread(target=lambda: setattr(backend, "_result", backend.run()))
        runner.start()
        try:
            deadline = time.monotonic() + 30.0
            while backend.port is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert backend.port is not None, "coordinator never bound its socket"
            # Also wait until intake ran, so stats sees admitted jobs.
            while backend.admitted == 0 and time.monotonic() < deadline:
                time.sleep(0.01)

            with ControlClient("127.0.0.1", backend.port, timeout_s=10.0) as client:
                stats = client.stats()
                assert stats["scheduler"] == "hand"
                assert stats["admitted"] == 4
                assert set(stats["workers"]) == {"a", "b"}

                reply = client.request(
                    "dispatch", job_id="extra", worker="b", handler="noop"
                )
                assert reply["worker"] == "b"

                with pytest.raises(ProtocolError, match="unknown worker"):
                    client.request("dispatch", job_id="extra2", worker="ghost")
                with pytest.raises(ProtocolError, match="unknown control verb"):
                    client.request("frobnicate")
        finally:
            runner.join(timeout=60.0)
        assert not runner.is_alive()
        report = backend._result
        assert report.conserved
        assert report.admitted == 5 and report.completed == 5
        assert "extra" in report.per_worker_completed["b"]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(time_scale=0.0),
            dict(heartbeat_s=-1.0),
            dict(miss_limit=0),
            dict(inflight_per_worker=0),
        ],
    )
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            ExecConfig(**bad)


class TestObservability:
    """Wall-clock spans + decision-ledger parity on the real backend."""

    def test_span_tree_links_submit_to_execute_end_to_end(self):
        from repro.obs import build_spans, span_coverage

        plan = hand_plan(slow_on_a=2, fast_on_b=2)
        backend = ExecBackend(plan, config(trace=True))
        report = backend.run()
        assert report.completed == 4

        trace = backend.metrics.trace
        spans = build_spans(trace)
        coverage = span_coverage(trace, spans)
        assert coverage.completed_jobs == 4
        # Every completed job's wall-clock span path must connect
        # submit -> execute with no gaps.
        assert coverage.fraction == 1.0, coverage.disconnected

        by_job = {}
        for span in spans:
            by_job.setdefault(span.trace_id, {})[span.name] = span
        for job in plan.jobs:
            tree = by_job[job.job_id]
            root, execute = tree["job"], tree["execute"]
            assert execute.parent_id == root.span_id
            assert root.start <= execute.start <= execute.end <= root.end
            # The execute span runs on the worker the plan pinned.
            planned = next(d.worker for d in plan.decisions if d.job_id == job.job_id)
            assert execute.track == planned

    def test_ledger_parity_with_assignment_log(self):
        plan = hand_plan(slow_on_a=1, fast_on_b=3)
        backend = ExecBackend(plan, config(trace=True))
        report = backend.run()

        ledger = backend.ledger
        assert ledger is not None
        # One wall-clock record per bind, in the same order as the
        # report's assignment log, all plan replays on a clean run.
        assert [
            (r.job_id, r.worker, r.kind == "redispatch") for r in ledger.records
        ] == list(report.assigned)
        assert all(r.policy == "exec" and r.kind == "replay" for r in ledger.records)
        # Candidates cover the whole fleet with live queue/locality facts.
        for record in ledger.records:
            assert {c.worker for c in record.candidates} == {"a", "b"}
            assert all(c.queue_depth is not None for c in record.candidates)

    def test_ledger_off_with_trace_off(self):
        backend = ExecBackend(hand_plan(1, 1), config(trace=False))
        backend.run()
        assert backend.ledger is None
