"""Tests for stats, ASCII charts and trace replay."""

import json

import numpy as np
import pytest

from repro.metrics.ascii_chart import bar_chart, grouped_bar_chart
from repro.metrics.stats import (
    Comparison,
    bootstrap_ci,
    bootstrap_ratio_ci,
    compare,
    mean_std,
    rank_sum_pvalue,
)
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.replay import load_trace, save_trace


class TestMeanStd:
    def test_basic(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_single_value(self):
        assert mean_std([5.0]) == (5.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_std([])


class TestBootstrap:
    def test_ci_contains_mean_for_tight_sample(self):
        values = [10.0, 10.1, 9.9, 10.05, 9.95]
        lo, hi = bootstrap_ci(values, seed=1)
        assert lo <= np.mean(values) <= hi
        assert hi - lo < 0.5

    def test_ci_deterministic_per_seed(self):
        values = [1.0, 5.0, 3.0, 2.0]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)

    def test_single_value_degenerate(self):
        assert bootstrap_ci([4.0]) == (4.0, 4.0)

    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_ratio_ci_straddles_true_ratio(self):
        baseline = [100.0, 110.0, 90.0, 105.0]
        candidate = [50.0, 55.0, 45.0, 52.0]
        lo, hi = bootstrap_ratio_ci(baseline, candidate, seed=2)
        assert lo < 2.0 < hi or (1.5 < lo and hi < 2.5)

    def test_ratio_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            bootstrap_ratio_ci([1.0], [0.0])


class TestCompare:
    def test_clear_win_is_significant(self):
        baseline = [100.0 + i for i in range(8)]
        candidate = [50.0 + i for i in range(8)]
        result = compare(baseline, candidate)
        assert isinstance(result, Comparison)
        assert result.speedup == pytest.approx(103.5 / 53.5, rel=0.01)
        assert result.significant

    def test_noise_is_not_significant(self):
        rng = np.random.default_rng(3)
        a = list(rng.normal(100, 10, size=8))
        b = list(rng.normal(100, 10, size=8))
        result = compare(a, b)
        assert not result.significant

    def test_rank_sum_symmetry(self):
        a, b = [1.0, 2.0, 3.0], [4.0, 5.0, 6.0]
        assert rank_sum_pvalue(a, b) == pytest.approx(rank_sum_pvalue(b, a))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rank_sum_pvalue([], [1.0])


class TestBarChart:
    def test_longest_bar_belongs_to_max(self):
        chart = bar_chart([("short", 10.0), ("long", 100.0)], width=20)
        lines = chart.splitlines()
        assert lines[1].count("█") == 20
        assert lines[0].count("█") == 2

    def test_title_and_unit(self):
        chart = bar_chart([("a", 1.0)], title="T", unit="s")
        assert chart.startswith("T\n")
        assert chart.rstrip().endswith("1.0 s")

    def test_zero_values_ok(self):
        chart = bar_chart([("zero", 0.0), ("one", 1.0)])
        assert "zero" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([])
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])
        with pytest.raises(ValueError):
            bar_chart([("a", 1.0)], width=0)

    def test_grouped_scales_globally(self):
        chart = grouped_bar_chart(
            [
                ("g1", [("x", 100.0)]),
                ("g2", [("y", 50.0)]),
            ],
            width=20,
        )
        lines = chart.splitlines()
        x_line = next(line for line in lines if "x" in line)
        y_line = next(line for line in lines if "y" in line)
        assert x_line.count("█") == 20
        assert y_line.count("█") == 10

    def test_grouped_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart([])


class TestReplay:
    def make_stream(self):
        return JobStream(
            arrivals=[
                JobArrival(
                    at=0.0,
                    job=Job(
                        job_id="j0",
                        task="RepositoryAnalyzer",
                        repo_id="linux",
                        size_mb=3800.0,
                        base_compute_s=2.0,
                    ),
                ),
                JobArrival(
                    at=12.5,
                    job=Job(job_id="j1", task="RepositoryAnalyzer", repo_id="linux", size_mb=3800.0),
                ),
                JobArrival(
                    at=3.0,
                    job=Job(job_id="j2", task="RepositorySearcher", base_compute_s=0.5, payload=("react",)),
                ),
            ],
            name="mytrace",
        )

    def test_roundtrip(self, tmp_path):
        stream = self.make_stream()
        path = save_trace(stream, tmp_path / "trace.json")
        corpus, loaded = load_trace(path)
        assert len(loaded) == 3
        assert loaded.name == "trace"
        assert "linux" in corpus
        assert corpus.get("linux").size_mb == pytest.approx(3800.0)
        originals = {(a.at, a.job.job_id, a.job.size_mb) for a in stream}
        replayed = {(a.at, a.job.job_id, a.job.size_mb) for a in loaded}
        assert originals == replayed

    def test_loaded_trace_runs_end_to_end(self, tmp_path):
        from conftest import make_profile, make_spec
        from repro.engine.runtime import EngineConfig, WorkflowRuntime, single_task_pipeline
        from repro.schedulers.registry import make_scheduler
        from repro.workload.msr import KIND_ANALYSIS, TASK_ANALYZER
        from repro.workload.pipeline import Pipeline, Task

        stream = JobStream(
            arrivals=[
                JobArrival(
                    at=float(i),
                    job=Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=10.0),
                )
                for i in range(4)
            ]
        )
        path = save_trace(stream, tmp_path / "t.json")
        _corpus, loaded = load_trace(path)
        runtime = WorkflowRuntime(
            profile=make_profile(make_spec("w1"), make_spec("w2")),
            stream=loaded,
            scheduler=make_scheduler("bidding"),
            config=EngineConfig(seed=0),
        )
        assert runtime.run().jobs_completed == 4

    def test_inconsistent_sizes_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                [
                    {"at": 0, "job_id": "a", "repo_id": "r", "size_mb": 10.0},
                    {"at": 1, "job_id": "b", "repo_id": "r", "size_mb": 20.0},
                ]
            )
        )
        with pytest.raises(ValueError, match="appeared earlier"):
            load_trace(path)

    def test_duplicate_job_ids_rejected(self, tmp_path):
        path = tmp_path / "dup.json"
        path.write_text(
            json.dumps(
                [
                    {"at": 0, "job_id": "a", "repo_id": "r", "size_mb": 10.0},
                    {"at": 1, "job_id": "a", "repo_id": "r", "size_mb": 10.0},
                ]
            )
        )
        with pytest.raises(ValueError, match="duplicate"):
            load_trace(path)

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "typo.json"
        path.write_text(json.dumps([{"at": 0, "jobid": "a"}]))
        with pytest.raises(ValueError, match="unknown keys"):
            load_trace(path)

    def test_non_array_rejected(self, tmp_path):
        path = tmp_path / "obj.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="JSON array"):
            load_trace(path)

    def test_defaults_applied(self, tmp_path):
        path = tmp_path / "minimal.json"
        path.write_text(json.dumps([{"repo_id": "r", "size_mb": 5.0}]))
        _corpus, stream = load_trace(path)
        job = stream.jobs[0]
        assert job.task == "RepositoryAnalyzer"
        assert job.job_id.startswith("trace-")
