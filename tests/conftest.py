"""Shared fixtures and helpers for engine-level tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.machine import Machine
from repro.cluster.profiles import WorkerProfile
from repro.cluster.worker_spec import WorkerSpec
from repro.data.cache import WorkerCache
from repro.engine.worker import WorkerNode
from repro.metrics.collector import MetricsCollector
from repro.net.topology import Topology, TopologyConfig
from repro.schedulers.base import WorkerPolicy
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def make_spec(name="w1", network=10.0, rw=50.0, **kwargs) -> WorkerSpec:
    """A worker spec with zero link latency for exact-time assertions."""
    kwargs.setdefault("link_latency", 0.0)
    return WorkerSpec(name=name, network_mbps=network, rw_mbps=rw, **kwargs)


def make_worker(
    sim: Simulator,
    spec: WorkerSpec | None = None,
    policy: WorkerPolicy | None = None,
    topology: Topology | None = None,
    metrics: MetricsCollector | None = None,
    cache_capacity: float = float("inf"),
) -> WorkerNode:
    """A standalone worker node wired to a private zero-latency topology."""
    spec = spec or make_spec()
    if topology is None:
        topology = Topology.build(
            sim, [], TopologyConfig(min_latency=0.0, max_latency=0.0, broker_processing=0.0)
        )
    if spec.name not in topology.node_latency:
        topology.add_node(spec.name, 0.0)
    machine = Machine(sim, spec, rng=np.random.default_rng(0))
    worker = WorkerNode(
        sim=sim,
        topology=topology,
        machine=machine,
        cache=WorkerCache(capacity_mb=cache_capacity),
        policy=policy or WorkerPolicy(),
        metrics=metrics or MetricsCollector(),
    )
    return worker


def make_profile(*specs: WorkerSpec) -> WorkerProfile:
    """Wrap specs into a profile for runtime-level tests."""
    return WorkerProfile("test-profile", tuple(specs))
