"""Framing of the exec wire protocol: boring on purpose, pinned here."""

import asyncio

import pytest

from repro.exec import protocol


class TestEncode:
    def test_round_trip(self):
        message = {"type": "dispatch", "job_id": "j1", "size_mb": 2.5}
        assert protocol.decode(protocol.encode(message)) == message

    def test_one_line_newline_terminated_sorted_keys(self):
        line = protocol.encode({"type": "x", "b": 1, "a": 2})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert line == b'{"a":2,"b":1,"type":"x"}\n'

    def test_type_field_is_mandatory(self):
        with pytest.raises(protocol.ProtocolError, match="without a type"):
            protocol.encode({"job_id": "j1"})

    def test_oversized_message_refused(self):
        with pytest.raises(protocol.ProtocolError, match="MAX_LINE"):
            protocol.encode({"type": "x", "blob": "a" * protocol.MAX_LINE})


class TestDecode:
    def test_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError, match="undecodable"):
            protocol.decode(b"{nope\n")

    def test_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError, match="without a type"):
            protocol.decode(b"[1,2,3]\n")

    def test_rejects_missing_type(self):
        with pytest.raises(protocol.ProtocolError, match="without a type"):
            protocol.decode(b'{"a":1}\n')

    def test_rejects_oversized_line(self):
        fat = b'{"type":"x","b":"' + b"a" * protocol.MAX_LINE + b'"}\n'
        with pytest.raises(protocol.ProtocolError, match="MAX_LINE"):
            protocol.decode(fat)


class TestRecv:
    def _recv_from(self, payload: bytes):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(payload)
            reader.feed_eof()
            return await protocol.recv(reader)

        return asyncio.run(scenario())

    def test_reads_one_message(self):
        assert self._recv_from(b'{"type":"heartbeat"}\n') == {"type": "heartbeat"}

    def test_eof_returns_none(self):
        assert self._recv_from(b"") is None
