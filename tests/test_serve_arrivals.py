"""Arrival-process tests: statistics, shapes, determinism, registry."""

from itertools import islice

import numpy as np
import pytest

from repro.serve.arrivals import (
    ARRIVAL_KINDS,
    BurstArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    TraceArrivals,
    make_arrivals,
)


def take(process, n, seed=0):
    return list(islice(process.times(np.random.default_rng(seed)), n))


class TestPoisson:
    def test_times_are_strictly_increasing(self):
        times = take(PoissonArrivals(rate=2.0), 500)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_gap_matches_rate(self):
        times = take(PoissonArrivals(rate=4.0), 20_000)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(0.25, rel=0.05)

    def test_deterministic_per_seed(self):
        process = PoissonArrivals(rate=1.0)
        assert take(process, 100, seed=7) == take(process, 100, seed=7)
        assert take(process, 100, seed=7) != take(process, 100, seed=8)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)


class TestDiurnal:
    def test_times_are_strictly_increasing(self):
        times = take(DiurnalArrivals(rate=2.0, amplitude=0.8), 500)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_intensity_oscillates_around_rate(self):
        process = DiurnalArrivals(rate=2.0, amplitude=0.5, period_s=100.0)
        assert process.intensity(25.0) == pytest.approx(3.0)  # peak
        assert process.intensity(75.0) == pytest.approx(1.0)  # trough
        assert process.intensity(0.0) == pytest.approx(2.0)

    def test_long_run_rate_matches_mean(self):
        # Thinning must preserve the *average* rate over whole periods.
        process = DiurnalArrivals(rate=3.0, amplitude=0.9, period_s=50.0)
        times = take(process, 30_000)
        observed = len(times) / times[-1]
        assert observed == pytest.approx(3.0, rel=0.05)

    def test_amplitude_bounds(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(rate=1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(rate=1.0, amplitude=-0.1)


class TestBurst:
    def test_bursts_land_on_schedule(self):
        process = BurstArrivals(rate=0.5, burst_size=4, burst_every_s=60.0)
        times = take(process, 400)
        for k in (60.0, 120.0, 180.0):
            assert times.count(k) == 4

    def test_merged_in_time_order(self):
        times = take(BurstArrivals(rate=1.0, burst_size=3, burst_every_s=10.0), 300)
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstArrivals(rate=1.0, burst_size=0)
        with pytest.raises(ValueError):
            BurstArrivals(rate=1.0, burst_every_s=0.0)


class TestTrace:
    def test_replays_sorted_and_scaled(self):
        process = TraceArrivals(at=(5.0, 1.0, 3.0), time_scale=2.0)
        assert take(process, 10) == [2.0, 6.0, 10.0]

    def test_is_finite(self):
        assert len(take(TraceArrivals(at=(1.0, 2.0)), 100)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceArrivals(at=())
        with pytest.raises(ValueError):
            TraceArrivals(at=(-1.0,))
        with pytest.raises(ValueError):
            TraceArrivals(at=(1.0,), time_scale=0.0)


class TestRegistry:
    def test_builds_each_kind(self):
        assert isinstance(make_arrivals("poisson", rate=1.0), PoissonArrivals)
        assert isinstance(make_arrivals("diurnal", rate=1.0), DiurnalArrivals)
        assert isinstance(make_arrivals("burst", rate=1.0), BurstArrivals)
        assert isinstance(make_arrivals("trace", at=(1.0,)), TraceArrivals)

    def test_kind_attribute_matches_registry_key(self):
        for kind, cls in ARRIVAL_KINDS.items():
            assert cls.kind == kind

    def test_unknown_kind_lists_choices(self):
        with pytest.raises(KeyError, match="poisson"):
            make_arrivals("weibull", rate=1.0)
