"""Service-runtime invariants: conservation, bounded queue, determinism,
elasticity and hysteresis."""

import pytest

from repro.cluster.profiles import all_equal
from repro.engine.runtime import EngineConfig
from repro.schedulers.registry import make_scheduler
from repro.serve import (
    AdmissionConfig,
    Autoscaler,
    AutoscalerConfig,
    PoissonArrivals,
    ServiceConfig,
    ServiceRuntime,
    TraceArrivals,
)
from repro.workload.source import SyntheticJobSource


def make_service(
    scheduler="bidding",
    rate=1.0,
    duration=60.0,
    seed=11,
    queue_cap=16,
    policy="reject",
    autoscaler=None,
    **engine_kwargs,
) -> ServiceRuntime:
    return ServiceRuntime(
        profile=all_equal(),
        scheduler=make_scheduler(scheduler),
        arrivals=PoissonArrivals(rate=rate),
        admission_config=AdmissionConfig(queue_cap=queue_cap, policy=policy),
        autoscaler_config=autoscaler,
        service_config=ServiceConfig(duration_s=duration),
        config=EngineConfig(seed=seed, trace=False, **engine_kwargs),
    )


class TestConservation:
    @pytest.mark.parametrize("scheduler", ["bidding", "baseline", "round-robin"])
    def test_every_admitted_job_completes_exactly_once(self, scheduler):
        runtime = make_service(scheduler=scheduler, rate=1.5, duration=60.0)
        report = runtime.run()
        assert report.completed == report.admitted
        assert report.arrivals == report.admitted + report.shed
        assert runtime.metrics.jobs_completed == report.completed
        assert runtime.master.outstanding == 0

    def test_conservation_across_manual_scale_down(self):
        # Drain two workers mid-run while jobs are in flight; every
        # admitted job must still complete exactly once.
        runtime = make_service(rate=1.5, duration=60.0, queue_cap=32)

        def churn():
            yield runtime.sim.timeout(15.0)
            runtime.scale_down()
            yield runtime.sim.timeout(5.0)
            runtime.scale_down()
            yield runtime.sim.timeout(20.0)
            runtime.scale_up()

        runtime.sim.process(churn(), name="churn")
        report = runtime.run()
        assert report.completed == report.admitted
        assert report.workers_final == 4  # 5 - 2 + 1
        assert runtime.metrics.workers_retired == 2
        assert runtime.metrics.workers_joined == 1

    def test_drained_worker_receives_no_new_work(self):
        runtime = make_service(rate=1.5, duration=60.0, queue_cap=32)
        assigned_late = []

        def watch():
            yield runtime.sim.timeout(10.0)
            victim = runtime.scale_down()
            # Let contests opened before retirement finish closing (the
            # 1 s bidding window + message latencies) before snapshotting.
            yield runtime.sim.timeout(3.0)
            before = set(runtime.master.assignments)
            yield runtime.sim.timeout(46.0)
            assigned_late.extend(
                job_id
                for job_id, worker in runtime.master.assignments.items()
                if worker == victim and job_id not in before
            )

        runtime.sim.process(watch(), name="watch")
        report = runtime.run()
        assert report.completed == report.admitted
        assert assigned_late == []


class TestBoundedQueue:
    def test_queue_peak_respects_cap_under_overload(self):
        report = make_service(rate=4.0, duration=45.0, queue_cap=8).run()
        assert report.queue_peak <= 8
        assert report.shed > 0

    def test_delay_policy_sheds_nothing(self):
        report = make_service(rate=2.0, duration=45.0, queue_cap=8, policy="delay").run()
        assert report.shed == 0
        assert report.completed == report.arrivals
        assert report.queue_peak <= 8


class TestDeterminism:
    def test_identical_seeds_identical_reports(self):
        first = make_service(rate=1.5, duration=60.0).run().to_dict()
        second = make_service(rate=1.5, duration=60.0).run().to_dict()
        assert first == second

    def test_different_seeds_differ(self):
        first = make_service(seed=1, duration=60.0).run().to_dict()
        second = make_service(seed=2, duration=60.0).run().to_dict()
        assert first != second

    def test_deterministic_with_autoscaler(self):
        config = AutoscalerConfig(
            min_workers=2, max_workers=10, check_interval_s=5.0, cooldown_s=15.0
        )
        first = make_service(rate=2.5, duration=60.0, autoscaler=config).run().to_dict()
        second = make_service(rate=2.5, duration=60.0, autoscaler=config).run().to_dict()
        assert first == second


class TestElasticity:
    def test_overload_scales_up_and_conserves(self):
        config = AutoscalerConfig(
            min_workers=2, max_workers=10, check_interval_s=5.0, cooldown_s=10.0
        )
        runtime = make_service(rate=2.5, duration=90.0, queue_cap=32, autoscaler=config)
        report = runtime.run()
        assert report.scale_ups >= 1
        assert report.workers_peak > report.workers_initial
        assert report.completed == report.admitted

    def test_scaled_up_worker_starts_cold_and_works(self):
        runtime = make_service(rate=2.0, duration=60.0, queue_cap=32)
        names = []

        def grow():
            yield runtime.sim.timeout(10.0)
            names.append(runtime.scale_up())

        runtime.sim.process(grow(), name="grow")
        report = runtime.run()
        assert report.completed == report.admitted
        (name,) = names
        node = runtime.workers[name]
        # The elastic worker joined cold and earned work afterwards.
        assert runtime.metrics.workers[name].jobs_completed > 0
        assert node.cache.stats.misses > 0

    def test_idle_fleet_scales_down_to_min(self):
        config = AutoscalerConfig(
            min_workers=2, max_workers=10, check_interval_s=5.0, cooldown_s=5.0
        )
        # One early arrival, then a long lull: the pool must drain to
        # min while the service stays up waiting for the second arrival.
        runtime = ServiceRuntime(
            profile=all_equal(),
            scheduler=make_scheduler("bidding"),
            arrivals=TraceArrivals(at=(1.0, 100.0)),
            admission_config=AdmissionConfig(queue_cap=8),
            autoscaler_config=config,
            service_config=ServiceConfig(duration_s=120.0),
            config=EngineConfig(seed=3, trace=False),
        )
        report = runtime.run()
        assert report.completed == report.admitted == 2
        assert report.workers_final == 2
        assert report.scale_downs == 3


class StubService:
    """Minimal stand-in exposing exactly what the autoscaler reads."""

    class _Master:
        def __init__(self, names):
            self.active_workers = list(names)
            self.outstanding = 0

    class _Admission:
        depth = 0

    class _Node:
        def __init__(self, busy):
            self.is_idle = not busy

    def __init__(self, workers=4, busy=True):
        self.master = self._Master([f"w{i}" for i in range(workers)])
        self.admission = self._Admission()
        self.workers = {name: self._Node(busy) for name in self.master.active_workers}
        self.closed = False
        self.actions = []

    def scale_up(self):
        name = f"e{len(self.actions)}"
        self.master.active_workers.append(name)
        self.workers[name] = self._Node(True)
        self.actions.append("up")

    def scale_down(self):
        victim = self.master.active_workers.pop()
        del self.workers[victim]
        self.actions.append("down")


class TestHysteresis:
    def test_signal_between_thresholds_never_acts(self):
        service = StubService(workers=4)
        scaler = Autoscaler(
            service,
            AutoscalerConfig(scale_up_backlog=3.0, scale_down_backlog=0.5, cooldown_s=0.0),
        )
        service.admission.depth = 6  # 1.5 per worker: inside the gap
        for step in range(100):
            scaler._evaluate(float(step))
        assert service.actions == []

    def test_constant_load_never_flaps(self):
        # A constant backlog must produce a monotone action sequence:
        # scale up until the signal falls inside the gap, then nothing.
        service = StubService(workers=2, busy=True)
        scaler = Autoscaler(
            service,
            AutoscalerConfig(
                max_workers=10, scale_up_backlog=3.0, scale_down_backlog=0.5, cooldown_s=0.0
            ),
        )
        service.master.outstanding = 12  # constant total backlog
        for step in range(200):
            scaler._evaluate(float(step))
        assert "down" not in service.actions
        assert service.actions == ["up"] * len(service.actions)
        # 12/4 = 3.0 still triggers; 12/5 = 2.4 is inside the gap.
        assert len(service.master.active_workers) == 5

    def test_cooldown_spaces_actions(self):
        service = StubService(workers=2, busy=True)
        scaler = Autoscaler(
            service,
            AutoscalerConfig(max_workers=10, scale_up_backlog=3.0, cooldown_s=30.0),
        )
        service.master.outstanding = 1000
        for step in range(100):
            scaler._evaluate(float(step))
        # 100 s of sustained overload with a 30 s cooldown: ~4 actions.
        assert len(service.actions) == 4

    def test_busy_fleet_resists_scale_down(self):
        service = StubService(workers=4, busy=True)
        scaler = Autoscaler(
            service,
            AutoscalerConfig(
                min_workers=1,
                scale_down_backlog=0.5,
                scale_down_utilization=0.5,
                cooldown_s=0.0,
            ),
        )
        service.admission.depth = 0  # queue empty, but workers all busy
        for step in range(50):
            scaler._evaluate(float(step))
        assert service.actions == []

    def test_validates_threshold_gap(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_up_backlog=1.0, scale_down_backlog=1.0)


class TestEdgeCases:
    def test_zero_arrival_window_closes_cleanly(self):
        runtime = ServiceRuntime(
            profile=all_equal(),
            scheduler=make_scheduler("bidding"),
            arrivals=TraceArrivals(at=(50.0,)),
            service_config=ServiceConfig(duration_s=10.0),  # arrival misses window
            config=EngineConfig(seed=5, trace=False),
        )
        report = runtime.run()
        assert report.arrivals == 0
        assert report.completed == 0
        assert report.latency_p99_s == 0.0

    def test_custom_source_tenants_reach_report(self):
        runtime = ServiceRuntime(
            profile=all_equal(),
            scheduler=make_scheduler("round-robin"),
            arrivals=PoissonArrivals(rate=1.0),
            source=SyntheticJobSource(tenants={"red": 3.0, "blue": 1.0}),
            service_config=ServiceConfig(duration_s=60.0),
            config=EngineConfig(seed=9, trace=False),
        )
        report = runtime.run()
        assert set(report.per_tenant_admitted) == {"red", "blue"}
        assert report.per_tenant_admitted["red"] > report.per_tenant_admitted["blue"]

    def test_stall_raises_at_max_sim_time(self):
        runtime = make_service(duration=30.0, max_sim_time=5.0)
        with pytest.raises(RuntimeError, match="quiesce"):
            runtime.run()
