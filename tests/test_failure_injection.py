"""Failure-injection tests: worker death with and without fault tolerance.

The paper explicitly leaves fault handling out ("there are currently no
specific policies in place to handle situations such as a worker dying
after winning a bid").  The engine reproduces that default -- the
workflow stalls -- and offers reallocation behind
``EngineConfig.fault_tolerance`` as the extension DESIGN.md describes.
"""

import pytest

from conftest import make_profile, make_spec
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import make_scheduler
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def stream_of(n=8, size=50.0):
    return JobStream(
        arrivals=[
            JobArrival(
                at=float(i),
                job=Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=size),
            )
            for i in range(n)
        ]
    )


def build_runtime(scheduler="bidding", fault_tolerance=False, max_sim_time=500.0):
    return WorkflowRuntime(
        profile=make_profile(make_spec("w1"), make_spec("w2"), make_spec("w3")),
        stream=stream_of(),
        scheduler=make_scheduler(scheduler),
        config=EngineConfig(
            seed=0,
            noise_kind="none",
            noise_params={},
            topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
            fault_tolerance=fault_tolerance,
            max_sim_time=max_sim_time,
        ),
    )


def kill_after(runtime, worker_name, delay):
    runtime.sim.timeout(delay).add_callback(
        lambda _e: runtime.workers[worker_name].kill()
    )


class TestPaperDefault:
    def test_workflow_stalls_without_fault_tolerance(self):
        runtime = build_runtime(fault_tolerance=False)
        kill_after(runtime, "w1", 2.0)
        with pytest.raises(RuntimeError, match="did not complete"):
            runtime.run()

    def test_dead_worker_leaves_active_set(self):
        runtime = build_runtime(fault_tolerance=False)
        kill_after(runtime, "w1", 2.0)
        with pytest.raises(RuntimeError):
            runtime.run()
        assert "w1" not in runtime.master.active_workers

    def test_no_stall_if_dead_worker_had_no_jobs(self):
        # Killing a worker that holds nothing must not block completion.
        runtime = build_runtime(scheduler="round-robin", fault_tolerance=False)
        # Round-robin assigns j0->w1; kill w3 late, after its queue drained.
        kill_after(runtime, "w3", 400.0)
        # Completion may happen before or after the kill; either way the
        # workflow itself finishes (guard would raise otherwise).
        runtime.run()


class TestFaultToleranceExtension:
    @pytest.mark.parametrize("scheduler", ["bidding", "baseline", "random"])
    def test_orphans_reallocated_and_workflow_completes(self, scheduler):
        runtime = build_runtime(scheduler=scheduler, fault_tolerance=True, max_sim_time=2000.0)
        kill_after(runtime, "w1", 2.0)
        result = runtime.run()
        assert result.jobs_completed == 8

    def test_survivors_absorb_the_load(self):
        runtime = build_runtime(scheduler="bidding", fault_tolerance=True, max_sim_time=2000.0)
        kill_after(runtime, "w1", 2.0)
        result = runtime.run()
        survivors = {"w2", "w3"}
        completed_by = {
            name for name, count in result.per_worker_jobs.items() if count > 0
        }
        assert completed_by <= survivors | {"w1"}
        assert sum(result.per_worker_jobs.get(name, 0) for name in survivors) >= 7

    def test_bidding_contests_exclude_dead_worker(self):
        runtime = build_runtime(scheduler="bidding", fault_tolerance=True, max_sim_time=2000.0)
        kill_after(runtime, "w1", 2.0)
        runtime.run()
        # Jobs arriving after the death are never assigned to w1.
        late_assignments = {
            job_id: worker
            for job_id, worker in runtime.master.assignments.items()
            if int(job_id[1:]) >= 4  # arrive at t >= 4 > kill time + slack
        }
        assert "w1" not in late_assignments.values()
