"""Tests for the Zipf workload extension and the ASCII Gantt renderer."""

import numpy as np
import pytest

from repro.metrics.analysis import ascii_gantt
from repro.metrics.trace import Trace
from repro.workload.generators import ZipfJobConfig, job_config_by_name, zipf_workload


class TestZipfWorkload:
    def test_registry_entry(self):
        config = job_config_by_name("zipf")
        corpus, stream = config.build(seed=1)
        assert len(stream) == 120
        assert len(corpus) == config.n_repos

    def test_jobs_reference_pool_repos(self):
        corpus, stream = zipf_workload(alpha=1.0).build(seed=2)
        for arrival in stream:
            assert arrival.job.repo_id in corpus

    def test_uniform_alpha_spreads_references(self):
        _corpus, stream = zipf_workload(alpha=0.0).build(seed=3)
        repos = [a.job.repo_id for a in stream]
        counts = {repo: repos.count(repo) for repo in set(repos)}
        assert max(counts.values()) <= 12  # no single hot repo at alpha=0

    def test_high_alpha_concentrates_references(self):
        _corpus, stream = zipf_workload(alpha=2.5).build(seed=3)
        repos = [a.job.repo_id for a in stream]
        counts = sorted(
            (repos.count(repo) for repo in set(repos)), reverse=True
        )
        assert counts[0] > 40  # the rank-1 repo dominates

    def test_higher_alpha_fewer_distinct(self):
        def distinct(alpha):
            _c, stream = zipf_workload(alpha=alpha).build(seed=4)
            return len({a.job.repo_id for a in stream})

        assert distinct(2.0) < distinct(0.0)

    def test_deterministic(self):
        a = zipf_workload(alpha=1.0).build(seed=5)[1]
        b = zipf_workload(alpha=1.0).build(seed=5)[1]
        assert [x.job.repo_id for x in a] == [x.job.repo_id for x in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfJobConfig(alpha=-0.1)
        with pytest.raises(ValueError):
            ZipfJobConfig(alpha=1.0, n_repos=0)

    def test_sizes_consistent_per_repo(self):
        corpus, stream = zipf_workload(alpha=1.5).build(seed=6)
        for arrival in stream:
            assert arrival.job.size_mb == corpus.get(arrival.job.repo_id).size_mb


class TestAsciiGantt:
    def build_trace(self):
        trace = Trace()
        trace.record(0.0, "started", "j1", "w1")
        trace.record(50.0, "completed", "j1", "w1")
        trace.record(0.0, "started", "j2", "w2")
        trace.record(100.0, "completed", "j2", "w2")
        return trace

    def test_rows_per_worker(self):
        chart = ascii_gantt(self.build_trace(), makespan=100.0, width=20)
        lines = chart.splitlines()
        assert len(lines) == 3  # two workers + axis
        assert lines[0].lstrip().startswith("w1")

    def test_busy_fraction_visible(self):
        chart = ascii_gantt(self.build_trace(), makespan=100.0, width=20)
        w1_row, w2_row, _axis = chart.splitlines()
        assert w1_row.count("#") < w2_row.count("#")
        assert w2_row.count("#") == 20

    def test_axis_shows_makespan(self):
        chart = ascii_gantt(self.build_trace(), makespan=100.0, width=20)
        assert "100s" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_gantt(self.build_trace(), makespan=0.0)
        with pytest.raises(ValueError):
            ascii_gantt(self.build_trace(), makespan=10.0, width=5)

    def test_max_workers_cap(self):
        trace = Trace()
        for index in range(15):
            trace.record(0.0, "started", f"j{index}", f"w{index:02d}")
            trace.record(1.0, "completed", f"j{index}", f"w{index:02d}")
        chart = ascii_gantt(trace, makespan=1.0, max_workers=5)
        assert len(chart.splitlines()) == 6  # 5 workers + axis
