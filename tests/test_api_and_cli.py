"""Tests for the top-level convenience API and remaining CLI paths."""

import pytest

from repro import compare_schedulers, run_workflow
from repro.engine.runtime import EngineConfig


class TestRunWorkflow:
    def test_returns_one_result_per_iteration(self):
        runs = run_workflow(
            scheduler="round-robin",
            workload="80%_small",
            profile="all-equal",
            seed=2,
            iterations=2,
        )
        assert [run.iteration for run in runs] == [0, 1]
        assert all(run.scheduler == "round-robin" for run in runs)

    def test_scheduler_kwargs_forwarded(self):
        # A pathological window forces fallbacks; the kwarg must reach
        # the policy factory for that to happen.
        runs = run_workflow(
            scheduler="bidding",
            workload="80%_small",
            profile="all-equal",
            seed=2,
            iterations=1,
            window_s=0.05,
            bid_compute_s=0.5,
        )
        assert runs[0].contests_fallback > 0

    def test_unknown_scheduler_raises(self):
        with pytest.raises(KeyError):
            run_workflow(scheduler="oracle", iterations=1)


class TestCompareSchedulers:
    def test_all_requested_schedulers_present(self):
        results = compare_schedulers(
            workload="80%_small",
            profile="all-equal",
            seed=2,
            schedulers=("random", "round-robin"),
            iterations=1,
        )
        assert set(results) == {"random", "round-robin"}

    def test_identical_workload_across_schedulers(self):
        results = compare_schedulers(
            workload="all_small_strict",
            profile="all-equal",
            seed=2,
            schedulers=("random", "round-robin"),
            iterations=1,
        )
        jobs = {name: runs[0].jobs_completed for name, runs in results.items()}
        assert set(jobs.values()) == {120}


class TestEngineConfigValidation:
    def test_message_loss_bounds(self):
        with pytest.raises(ValueError):
            EngineConfig(message_loss=-0.1)
        with pytest.raises(ValueError):
            EngineConfig(message_loss=1.0)

    def test_max_sim_time_positive(self):
        with pytest.raises(ValueError):
            EngineConfig(max_sim_time=0.0)

    def test_defaults_valid(self):
        config = EngineConfig()
        assert config.message_loss == 0.0
        assert config.prefetch is False
        assert config.shared_origin_mbps is None


class TestCLIPaths:
    def test_report_subcommand_delegates(self, monkeypatch, capsys, tmp_path):
        import repro.experiments.html_report as html_report
        from repro.cli import main

        written = {}

        def fake_generate(out, parallel=None):
            written["out"] = out
            path = tmp_path / "r.html"
            path.write_text("<html></html>")
            return path

        monkeypatch.setattr(html_report, "generate", fake_generate)
        assert main(["report", "--out", str(tmp_path / "r.html")]) == 0
        assert "report written to" in capsys.readouterr().out
        assert written["out"] == str(tmp_path / "r.html")

    def test_run_save_csv(self, tmp_path, capsys):
        from repro.cli import main
        from repro.experiments.report_io import load_csv

        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "run",
                "--scheduler",
                "round-robin",
                "--workload",
                "80%_small",
                "--seed",
                "2",
                "--iterations",
                "1",
                "--save-csv",
                str(csv_path),
            ]
        )
        assert code == 0
        loaded = load_csv(csv_path)
        assert len(loaded) == 1
        assert loaded[0].scheduler == "round-robin"

    def test_cold_flag_prevents_cache_carryover(self, capsys):
        from repro.cli import main

        main(
            [
                "run",
                "--scheduler",
                "bidding",
                "--workload",
                "all_small_strict",
                "--seed",
                "2",
                "--iterations",
                "2",
                "--cold",
            ]
        )
        out = capsys.readouterr().out
        assert "caches cold" in out
        # Both iterations show full misses in the table (120 each).
        miss_columns = [
            line.split()[2] for line in out.splitlines() if line.startswith(("0 ", "1 "))
        ]
        assert miss_columns == ["120", "120"]


class TestExecCLI:
    def test_diff_subcommand_writes_report_and_agrees(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "divergence.json"
        code = main(
            [
                "exec",
                "--diff",
                "--schedulers",
                "baseline",
                "--jobs",
                "6",
                "--time-scale",
                "0.002",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "backends agree" in printed
        assert "baseline" in printed
        import json

        assert json.loads(out.read_text())["ok"] is True

    def test_single_replay_prints_pool_summary(self, capsys):
        from repro.cli import main

        code = main(
            ["exec", "--schedulers", "baseline", "--jobs", "6", "--time-scale", "0.002"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "6/6 jobs" in printed
        assert "handoff p50" in printed

    def test_malformed_kill_flag_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="WORKER:AFTER"):
            main(["exec", "--schedulers", "baseline", "--kill", "nope"])


class TestGoldenCLI:
    def test_check_passes_on_committed_fixtures(self, capsys):
        from repro.cli import main

        assert main(["golden", "--check"]) == 0
        printed = capsys.readouterr().out
        assert "determinism" in printed and "perfetto" in printed

    def test_unknown_fixture_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown golden fixture"):
            main(["golden", "nope"])


class TestServeRealBackendCLI:
    def test_serve_executes_on_the_real_pool(self, capsys):
        from repro.cli import main

        code = main(
            [
                "serve",
                "--backend",
                "real",
                "--scheduler",
                "baseline",
                "--rate",
                "1",
                "--duration",
                "5",
                "--seed",
                "3",
                "--time-scale",
                "0.005",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "plan captured" in printed
        assert "real pool" in printed
        assert "remain simulated" in printed
