"""Admission-control tests: token bucket, bounded queue, fairness,
backpressure plumbing."""

import pytest

from repro.serve.admission import (
    ADMIT,
    DELAY,
    SHED,
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.sim import Simulator
from repro.workload.job import Job
from repro.workload.msr import TASK_ANALYZER


def make_job(index: int, tenant: str = "default") -> Job:
    return Job(job_id=f"j{index}", task=TASK_ANALYZER, payload=(tenant,))


def make_controller(sim=None, **kwargs) -> AdmissionController:
    return AdmissionController(sim or Simulator(), AdmissionConfig(**kwargs))


class TestTokenBucket:
    def test_burst_then_rate_paced(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [True, True, True, False]
        assert bucket.try_take(0.5) is False
        assert bucket.try_take(1.0) is True

    def test_time_until_token(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.time_until_token(0.0) == 0.0
        assert bucket.try_take(0.0)
        assert bucket.time_until_token(0.0) == pytest.approx(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        # A long idle period refills to the cap, not beyond.
        results = [bucket.try_take(100.0) for _ in range(3)]
        assert results == [True, True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestBoundedQueue:
    def test_admits_until_cap_then_sheds(self):
        controller = make_controller(queue_cap=3)
        decisions = [controller.offer(make_job(i), "default") for i in range(5)]
        assert [d.action for d in decisions] == [ADMIT, ADMIT, ADMIT, SHED, SHED]
        assert decisions[3].reason == "queue_full"
        assert controller.depth == 3
        assert controller.shed_queue_full == 2
        assert controller.depth_peak == 3

    def test_depth_never_exceeds_cap(self):
        controller = make_controller(queue_cap=4)
        for i in range(50):
            controller.offer(make_job(i), "default")
            if i % 3 == 0:
                controller.next_job()
            assert controller.depth <= 4
        assert controller.depth_peak <= 4

    def test_dequeue_reopens_the_door(self):
        controller = make_controller(queue_cap=1)
        assert controller.offer(make_job(0), "default").action == ADMIT
        assert controller.offer(make_job(1), "default").action == SHED
        controller.next_job()
        assert controller.offer(make_job(2), "default").action == ADMIT

    def test_delay_policy_asks_caller_to_wait(self):
        controller = make_controller(queue_cap=1, policy="delay")
        controller.offer(make_job(0), "default")
        decision = controller.offer(make_job(1), "default")
        assert decision.action == DELAY
        assert decision.reason == "queue_full"
        assert decision.retry_after_s == 0.0
        assert controller.shed == 0  # delay never counts as shed


class TestRateLimit:
    def test_bucket_sheds_over_rate(self):
        controller = make_controller(queue_cap=100, rate_limit=1.0, rate_burst=2.0)
        decisions = [controller.offer(make_job(i), "default") for i in range(4)]
        assert [d.action for d in decisions] == [ADMIT, ADMIT, SHED, SHED]
        assert controller.shed_rate_limited == 2
        assert all(d.reason == "rate_limited" for d in decisions[2:])

    def test_delay_policy_returns_retry_hint(self):
        controller = make_controller(
            queue_cap=100, policy="delay", rate_limit=2.0, rate_burst=1.0
        )
        assert controller.offer(make_job(0), "default").action == ADMIT
        decision = controller.offer(make_job(1), "default")
        assert decision.action == DELAY
        assert decision.reason == "rate_limited"
        assert decision.retry_after_s == pytest.approx(0.5)


class TestTenantFairness:
    def test_weighted_dequeue_shares(self):
        controller = make_controller(
            queue_cap=100, tenant_weights={"a": 2.0, "b": 1.0}
        )
        for i in range(30):
            controller.offer(make_job(i, "a"), "a")
            controller.offer(make_job(100 + i, "b"), "b")
        drained = [controller.next_job()[1] for _ in range(30)]
        # SFQ with weight 2:1 interleaves roughly two a's per b.
        assert drained.count("a") == 20
        assert drained.count("b") == 10

    def test_fifo_within_a_tenant(self):
        controller = make_controller(queue_cap=100)
        for i in range(5):
            controller.offer(make_job(i), "default")
        order = [controller.next_job()[0].job_id for _ in range(5)]
        assert order == [f"j{i}" for i in range(5)]

    def test_idle_tenant_banks_no_credit(self):
        controller = make_controller(queue_cap=100)
        # Tenant a runs alone for a while...
        for i in range(10):
            controller.offer(make_job(i, "a"), "a")
        for _ in range(10):
            controller.next_job()
        # ...then b arrives.  b must not monopolise the queue to "catch
        # up" on service it never requested: the drain alternates.
        for i in range(4):
            controller.offer(make_job(100 + i, "a"), "a")
            controller.offer(make_job(200 + i, "b"), "b")
        drained = [controller.next_job()[1] for _ in range(8)]
        assert drained.count("b") == 4
        assert sorted(set(drained[:2])) == ["a", "b"]

    def test_unlisted_tenant_defaults_to_weight_one(self):
        controller = make_controller(queue_cap=100, tenant_weights={"vip": 3.0})
        for i in range(8):
            controller.offer(make_job(i, "vip"), "vip")
            controller.offer(make_job(100 + i, "anon"), "anon")
        drained = [controller.next_job()[1] for _ in range(8)]
        assert drained.count("vip") == 6
        assert drained.count("anon") == 2

    def test_per_tenant_counters(self):
        controller = make_controller(queue_cap=2)
        controller.offer(make_job(0, "a"), "a")
        controller.offer(make_job(1, "b"), "b")
        controller.offer(make_job(2, "b"), "b")  # shed: queue full
        assert controller.per_tenant_admitted == {"a": 1, "b": 1}
        assert controller.per_tenant_shed == {"b": 1}


class TestBackpressurePlumbing:
    def test_wait_for_space_fires_on_dequeue(self):
        sim = Simulator()
        controller = make_controller(sim, queue_cap=1)
        controller.offer(make_job(0), "default")
        event = controller.wait_for_space()
        assert not event.triggered
        controller.next_job()
        assert event.triggered

    def test_wait_for_space_immediate_below_cap(self):
        sim = Simulator()
        controller = make_controller(sim, queue_cap=2)
        controller.offer(make_job(0), "default")
        assert controller.wait_for_space().triggered


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            AdmissionConfig(queue_cap=0)
        with pytest.raises(ValueError):
            AdmissionConfig(policy="drop")
        with pytest.raises(ValueError):
            AdmissionConfig(rate_limit=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(rate_burst=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(tenant_weights={"a": 0.0})
