"""Unit tests for Store, PriorityStore, Resource and Container."""

import pytest

from repro.sim import Container, PriorityStore, Resource, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestStore:
    def test_put_then_get_fifo(self, sim):
        store = Store(sim)
        received = []

        def consumer(sim, store):
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        for value in ("a", "b", "c"):
            store.put(value)
        sim.process(consumer(sim, store))
        sim.run()
        assert received == ["a", "b", "c"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def consumer(sim, store):
            item = yield store.get()
            return (sim.now, item)

        def producer(sim, store):
            yield sim.timeout(4.0)
            yield store.put("late")

        consumer_proc = sim.process(consumer(sim, store))
        sim.process(producer(sim, store))
        assert sim.run(consumer_proc) == (4.0, "late")

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)

        def producer(sim, store):
            yield store.put("one")
            yield store.put("two")
            return sim.now

        def consumer(sim, store):
            yield sim.timeout(3.0)
            yield store.get()

        producer_proc = sim.process(producer(sim, store))
        sim.process(consumer(sim, store))
        assert sim.run(producer_proc) == 3.0

    def test_multiple_getters_fifo(self, sim):
        store = Store(sim)
        winners = []

        def getter(sim, store, name):
            yield store.get()
            winners.append(name)

        sim.process(getter(sim, store, "first"))
        sim.process(getter(sim, store, "second"))

        def producer(sim, store):
            yield sim.timeout(1.0)
            yield store.put(1)
            yield sim.timeout(1.0)
            yield store.put(2)

        sim.process(producer(sim, store))
        sim.run()
        assert winners == ["first", "second"]

    def test_len_reflects_buffer(self, sim):
        store = Store(sim)
        store.put("x")
        store.put("y")
        sim.run()
        assert len(store) == 2

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestPriorityStore:
    def test_items_retrieved_smallest_first(self, sim):
        store = PriorityStore(sim)
        for priority in (3, 1, 2):
            store.put((priority, f"job-{priority}"))
        received = []

        def consumer(sim, store):
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        sim.process(consumer(sim, store))
        sim.run()
        assert received == [(1, "job-1"), (2, "job-2"), (3, "job-3")]

    def test_later_lower_priority_jumps_queue(self, sim):
        store = PriorityStore(sim)
        received = []

        def consumer(sim, store):
            yield sim.timeout(1.0)
            for _ in range(2):
                item = yield store.get()
                received.append(item)

        store.put((5, "low"))
        store.put((1, "high"))
        sim.process(consumer(sim, store))
        sim.run()
        assert received == [(1, "high"), (5, "low")]


class TestResource:
    def test_capacity_respected(self, sim):
        resource = Resource(sim, capacity=2)
        concurrency = []

        def user(sim, resource):
            request = resource.request()
            yield request
            concurrency.append(resource.count)
            yield sim.timeout(1.0)
            resource.release(request)

        for _ in range(5):
            sim.process(user(sim, resource))
        sim.run()
        assert max(concurrency) <= 2

    def test_fifo_grant_order(self, sim):
        resource = Resource(sim, capacity=1)
        grants = []

        def user(sim, resource, name):
            request = resource.request()
            yield request
            grants.append(name)
            yield sim.timeout(1.0)
            resource.release(request)

        for name in ("a", "b", "c"):
            sim.process(user(sim, resource, name))
        sim.run()
        assert grants == ["a", "b", "c"]

    def test_release_without_hold_raises(self, sim):
        resource = Resource(sim, capacity=1)
        stray = sim.event()
        with pytest.raises(RuntimeError):
            resource.release(stray)

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)


class TestContainer:
    def test_get_blocks_until_level(self, sim):
        container = Container(sim, capacity=100.0)

        def getter(sim, container):
            yield container.get(30.0)
            return sim.now

        def putter(sim, container):
            yield sim.timeout(2.0)
            yield container.put(50.0)

        getter_proc = sim.process(getter(sim, container))
        sim.process(putter(sim, container))
        assert sim.run(getter_proc) == 2.0
        assert container.level == 20.0

    def test_put_blocks_at_capacity(self, sim):
        container = Container(sim, capacity=10.0, init=10.0)

        def putter(sim, container):
            yield container.put(5.0)
            return sim.now

        def drainer(sim, container):
            yield sim.timeout(3.0)
            yield container.get(8.0)

        putter_proc = sim.process(putter(sim, container))
        sim.process(drainer(sim, container))
        assert sim.run(putter_proc) == 3.0

    def test_init_bounds_validated(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=5.0, init=6.0)
        with pytest.raises(ValueError):
            Container(sim, capacity=0.0)

    def test_negative_amounts_rejected(self, sim):
        container = Container(sim, capacity=10.0)
        with pytest.raises(ValueError):
            container.put(-1.0)
        with pytest.raises(ValueError):
            container.get(-1.0)
