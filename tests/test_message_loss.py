"""Message-loss robustness tests (control-plane drops, persistent data plane)."""

import numpy as np
import pytest

from conftest import make_profile, make_spec
from repro.engine.messages import (
    Assignment,
    Bid,
    Hello,
    JobAnnouncement,
    JobCompleted,
    JobOffer,
    NoWork,
    PullRequest,
    is_reliable,
)
from repro.engine.runtime import EngineConfig, WorkflowRuntime
from repro.net.broker import Broker
from repro.net.topology import TopologyConfig
from repro.schedulers.registry import make_scheduler
from repro.sim import Simulator
from repro.workload.job import Job, JobArrival, JobStream
from repro.workload.msr import TASK_ANALYZER


def lossy_config(loss, seed=0, max_sim_time=20_000.0):
    return EngineConfig(
        seed=seed,
        noise_kind="none",
        noise_params={},
        topology=TopologyConfig(min_latency=0.001, max_latency=0.002),
        message_loss=loss,
        max_sim_time=max_sim_time,
    )


def stream_of(n=15):
    return JobStream(
        arrivals=[
            JobArrival(
                at=float(i),
                job=Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=f"r{i}", size_mb=20.0),
            )
            for i in range(n)
        ]
    )


class TestReliabilityClassification:
    def test_job_carrying_messages_are_reliable(self):
        job = Job(job_id="j", task=TASK_ANALYZER, repo_id="r", size_mb=1.0)
        assert is_reliable(Assignment(job=job))
        assert is_reliable(JobOffer(job=job))
        assert is_reliable(JobCompleted(job=job, worker="w"))
        assert is_reliable(Hello(worker="w"))

    def test_control_messages_are_lossy(self):
        job = Job(job_id="j", task=TASK_ANALYZER, repo_id="r", size_mb=1.0)
        assert not is_reliable(PullRequest(worker="w"))
        assert not is_reliable(NoWork(worker="w"))
        assert not is_reliable(Bid(job_id="j", worker="w", cost_s=1.0))
        assert not is_reliable(JobAnnouncement(job=job))


class TestBrokerDropModel:
    def test_drop_rate_approximates_probability(self):
        sim = Simulator()
        broker = Broker(sim, drop_probability=0.3, rng=np.random.default_rng(1))
        sub = broker.subscribe("t", "w")
        for index in range(2000):
            broker.publish("t", index)
        sim.run()
        delivered = sub.delivered
        assert 0.6 * 2000 < delivered < 0.8 * 2000
        assert broker.dropped == 2000 - delivered

    def test_reliable_never_dropped(self):
        sim = Simulator()
        broker = Broker(sim, drop_probability=0.9, rng=np.random.default_rng(1))
        sub = broker.subscribe("t", "w")
        for index in range(200):
            broker.publish("t", index, reliable=True)
        sim.run()
        assert sub.delivered == 200
        assert broker.dropped == 0

    def test_drop_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Broker(sim, drop_probability=0.5)

    def test_invalid_probability(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Broker(sim, drop_probability=1.0, rng=np.random.default_rng(0))


class TestBiddingUnderLoss:
    def test_completes_with_lost_bids_and_announcements(self):
        profile = make_profile(make_spec("w1"), make_spec("w2"), make_spec("w3"))
        runtime = WorkflowRuntime(
            profile=profile,
            stream=stream_of(),
            scheduler=make_scheduler("bidding", bid_compute_s=0.0),
            config=lossy_config(0.3),
        )
        result = runtime.run()
        assert result.jobs_completed == 15
        assert runtime.topology.broker.dropped > 0

    def test_loss_shows_up_as_incomplete_contests(self):
        profile = make_profile(*[make_spec(f"w{i}") for i in range(1, 6)])
        runtime = WorkflowRuntime(
            profile=profile,
            stream=stream_of(30),
            scheduler=make_scheduler("bidding", bid_compute_s=0.0),
            config=lossy_config(0.4),
        )
        runtime.run()
        metrics = runtime.metrics
        # With 40 % control loss, many contests cannot be 'full'.
        assert metrics.contests_closed_full < metrics.contests_opened

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            lossy_config(1.0)


class TestBaselineUnderLoss:
    def test_stalls_without_response_timeout(self):
        """The paper's reliable-broker protocol deadlocks when pulls are
        lost: the worker waits forever for an answer."""
        profile = make_profile(make_spec("w1"), make_spec("w2"))
        runtime = WorkflowRuntime(
            profile=profile,
            stream=stream_of(10),
            scheduler=make_scheduler("baseline"),
            config=lossy_config(0.5, max_sim_time=500.0),
        )
        with pytest.raises(RuntimeError, match="did not complete"):
            runtime.run()

    def test_completes_with_response_timeout(self):
        profile = make_profile(make_spec("w1"), make_spec("w2"))
        runtime = WorkflowRuntime(
            profile=profile,
            stream=stream_of(10),
            scheduler=make_scheduler("baseline", response_timeout_s=2.0),
            config=lossy_config(0.5, max_sim_time=50_000.0),
        )
        result = runtime.run()
        assert result.jobs_completed == 10

    def test_timeout_validated(self):
        with pytest.raises(ValueError):
            make_scheduler("baseline", response_timeout_s=0.0).make_worker()

    def test_no_behaviour_change_without_loss(self):
        """With a reliable broker, the timeout extension never fires, so
        results are identical to the paper's protocol."""
        profile = make_profile(make_spec("w1"), make_spec("w2"))
        plain = WorkflowRuntime(
            profile=profile,
            stream=stream_of(10),
            scheduler=make_scheduler("baseline"),
            config=lossy_config(0.0),
        ).run()
        with_timeout = WorkflowRuntime(
            profile=profile,
            stream=stream_of(10),
            scheduler=make_scheduler("baseline", response_timeout_s=3.0),
            config=lossy_config(0.0),
        ).run()
        assert plain.makespan_s == with_timeout.makespan_s
        assert plain.cache_misses == with_timeout.cache_misses
