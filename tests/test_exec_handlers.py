"""The sandboxed handler registry: closed, deterministic, data-bounded."""

import pytest

from repro.exec.handlers import (
    HANDLERS,
    MAX_PAYLOAD_BYTES,
    HandlerError,
    payload_for,
    run_handler,
)


class TestPayload:
    def test_deterministic_per_job(self):
        assert payload_for("j1", "r1", 10.0) == payload_for("j1", "r1", 10.0)

    def test_distinct_jobs_get_distinct_payloads(self):
        assert payload_for("j1", "r1", 10.0) != payload_for("j2", "r1", 10.0)

    def test_size_scales_but_is_capped(self):
        small = payload_for("j1", "r1", 1.0)
        big = payload_for("j1", "r1", 10_000.0)
        assert len(small) < len(big)
        assert len(big) <= MAX_PAYLOAD_BYTES

    def test_data_free_jobs_still_have_bytes(self):
        assert len(payload_for("j1", None, 0.0)) >= 256


class TestRegistry:
    def test_registry_is_the_expected_closed_set(self):
        assert set(HANDLERS) == {"checksum", "crc", "wordcount", "noop"}

    @pytest.mark.parametrize("name", sorted(HANDLERS))
    def test_every_handler_is_deterministic(self, name):
        payload = payload_for("j1", "r1", 5.0)
        assert run_handler(name, payload) == run_handler(name, payload)

    def test_checksum_is_sha256_hex(self):
        import hashlib

        payload = payload_for("j9", "r2", 3.0)
        assert run_handler("checksum", payload) == hashlib.sha256(payload).hexdigest()

    def test_unknown_handler_refused(self):
        # The registry is the sandbox boundary: names resolve here or
        # nowhere -- dispatch messages can never smuggle code.
        with pytest.raises(HandlerError, match="nope"):
            run_handler("nope", b"data")
