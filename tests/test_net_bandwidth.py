"""Unit tests for the fair-share (processor-sharing) pipe."""

import pytest

from repro.net.bandwidth import FairSharePipe
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestSingleTransfer:
    def test_duration_is_size_over_capacity(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=10.0)
        done = pipe.transfer(100.0)
        sim.run()
        assert done.value == pytest.approx(10.0)
        assert sim.now == pytest.approx(10.0)

    def test_zero_size_completes_immediately(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=10.0)
        done = pipe.transfer(0.0)
        sim.run()
        assert done.value == 0.0
        assert sim.now == 0.0

    def test_negative_size_rejected(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=10.0)
        with pytest.raises(ValueError):
            pipe.transfer(-1.0)

    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            FairSharePipe(sim, capacity_mbps=0.0)


class TestSharing:
    def test_two_equal_transfers_halve_the_rate(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=10.0)
        a = pipe.transfer(100.0)
        b = pipe.transfer(100.0)
        sim.run()
        # Both share 10 MB/s: each effectively gets 5 -> 20 s.
        assert a.value == pytest.approx(20.0)
        assert b.value == pytest.approx(20.0)

    def test_short_transfer_finishes_then_long_speeds_up(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=10.0)
        long = pipe.transfer(100.0)
        short = pipe.transfer(10.0)
        sim.run()
        # Shared phase: short needs 10/(10/2) = 2 s.  Long then has
        # 100 - 5*2 = 90 MB at full rate -> total 2 + 9 = 11 s.
        assert short.value == pytest.approx(2.0)
        assert long.value == pytest.approx(11.0)

    def test_staggered_arrival(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=10.0)
        results = {}

        def first(sim, pipe):
            done = pipe.transfer(100.0)
            elapsed = yield done
            results["first"] = (sim.now, elapsed)

        def second(sim, pipe):
            yield sim.timeout(5.0)
            done = pipe.transfer(25.0)
            elapsed = yield done
            results["second"] = (sim.now, elapsed)

        sim.process(first(sim, pipe))
        sim.process(second(sim, pipe))
        sim.run()
        # t<5: first alone at 10 MB/s, drains 50 MB.  t>=5 shared at 5:
        # second needs 5 s (finishes t=10, 25 MB), first drains 25 more
        # (25 left at t=10), then full rate: finishes t=12.5.
        assert results["second"][0] == pytest.approx(10.0)
        assert results["first"][0] == pytest.approx(12.5)

    def test_work_conservation(self, sim):
        """Total bytes moved equals capacity * busy time for a saturated pipe."""
        pipe = FairSharePipe(sim, capacity_mbps=8.0)
        sizes = [30.0, 50.0, 20.0, 100.0]
        for size in sizes:
            pipe.transfer(size)
        sim.run()
        assert sim.now == pytest.approx(sum(sizes) / 8.0)

    def test_active_count_tracks_transfers(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=10.0)
        pipe.transfer(100.0)
        pipe.transfer(100.0)
        assert pipe.active_count == 2
        sim.run()
        assert pipe.active_count == 0

    def test_current_rate(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=12.0)
        assert pipe.current_rate_mbps == 12.0
        pipe.transfer(10.0)
        pipe.transfer(10.0)
        pipe.transfer(10.0)
        assert pipe.current_rate_mbps == pytest.approx(4.0)
        sim.run()

    def test_many_overlapping_transfers_all_complete(self, sim):
        pipe = FairSharePipe(sim, capacity_mbps=10.0)
        events = []

        def spawner(sim, pipe):
            for index in range(20):
                events.append(pipe.transfer(float(index + 1)))
                yield sim.timeout(0.5)

        sim.process(spawner(sim, pipe))
        sim.run()
        assert all(event.processed for event in events)
        total = sum(range(1, 21))
        assert sim.now >= total / 10.0 - 1e-9
