"""Unit tests for the Crossflow-style pipeline DSL and the MSR pipeline."""

import numpy as np
import pytest

from repro.data.github import GitHubService
from repro.data.repository import Repository, RepositoryCorpus
from repro.sim import Simulator
from repro.workload.job import Job
from repro.workload.msr import (
    KIND_ANALYSIS,
    KIND_LIBRARY,
    MSRPipelineSpec,
    TASK_ANALYZER,
    TASK_CALCULATOR,
    TASK_SEARCHER,
    CooccurrenceMatrix,
    build_msr_pipeline,
    library_stream,
)
from repro.workload.pipeline import Pipeline, Task


def two_stage_pipeline():
    def expand(job):
        return [
            Job(job_id=f"{job.job_id}-child", task="sink", payload=job.payload)
        ]

    pipeline = Pipeline(name="test")
    pipeline.add_task(Task(name="source-task", consumes=("A",), produces=("B",), handle=expand))
    pipeline.add_task(Task(name="sink", consumes=("B",)))
    pipeline.connect("A", None, "source-task")
    pipeline.connect("B", "source-task", "sink")
    return pipeline


class TestPipelineValidation:
    def test_valid_pipeline_passes(self):
        two_stage_pipeline().validate()

    def test_duplicate_task_rejected(self):
        pipeline = Pipeline(name="p")
        pipeline.add_task(Task(name="t", consumes=("A",)))
        with pytest.raises(ValueError):
            pipeline.add_task(Task(name="t", consumes=("A",)))

    def test_unknown_consumer_rejected(self):
        pipeline = Pipeline(name="p")
        pipeline.add_task(Task(name="t", consumes=("A",)))
        pipeline.connect("A", None, "ghost")
        with pytest.raises(ValueError, match="unknown consumer"):
            pipeline.validate()

    def test_producer_must_declare_kind(self):
        pipeline = Pipeline(name="p")
        pipeline.add_task(Task(name="a", consumes=("X",), produces=()))
        pipeline.add_task(Task(name="b", consumes=("Y",)))
        pipeline.connect("X", None, "a")
        pipeline.connect("Y", "a", "b")
        with pytest.raises(ValueError, match="does not produce"):
            pipeline.validate()

    def test_consumer_must_accept_kind(self):
        pipeline = Pipeline(name="p")
        pipeline.add_task(Task(name="a", consumes=("X",)))
        pipeline.connect("Z", None, "a")
        with pytest.raises(ValueError, match="does not consume"):
            pipeline.validate()

    def test_unfed_task_rejected(self):
        pipeline = Pipeline(name="p")
        pipeline.add_task(Task(name="a", consumes=("X",)))
        pipeline.add_task(Task(name="orphan", consumes=("Y",)))
        pipeline.connect("X", None, "a")
        with pytest.raises(ValueError, match="no incoming channel"):
            pipeline.validate()

    def test_task_must_consume_something(self):
        with pytest.raises(ValueError):
            Task(name="t", consumes=())


class TestRouting:
    def test_task_of(self):
        pipeline = two_stage_pipeline()
        job = Job(job_id="j", task="sink")
        assert pipeline.task_of(job).name == "sink"

    def test_task_of_unknown_raises(self):
        pipeline = two_stage_pipeline()
        with pytest.raises(KeyError):
            pipeline.task_of(Job(job_id="j", task="nowhere"))

    def test_on_completion_spawns_children(self):
        pipeline = two_stage_pipeline()
        parent = Job(job_id="p1", task="source-task", payload=("x",))
        children = pipeline.on_completion(parent)
        assert len(children) == 1
        assert children[0].task == "sink"
        assert children[0].payload == ("x",)

    def test_sink_completion_spawns_nothing(self):
        pipeline = two_stage_pipeline()
        assert pipeline.on_completion(Job(job_id="c", task="sink")) == []

    def test_child_for_unknown_task_rejected(self):
        pipeline = Pipeline(name="p")
        pipeline.add_task(
            Task(
                name="bad",
                consumes=("A",),
                handle=lambda job: [Job(job_id="x", task="ghost")],
            )
        )
        with pytest.raises(ValueError, match="unknown task"):
            pipeline.on_completion(Job(job_id="j", task="bad"))

    def test_source_tasks(self):
        assert two_stage_pipeline().source_tasks() == ["source-task"]


class TestMSRPipeline:
    @pytest.fixture
    def github(self):
        sim = Simulator()
        corpus = RepositoryCorpus(
            [
                Repository(f"r{i}", 600.0 + i, stars=9000, forks=9000)
                for i in range(20)
            ]
        )
        return GitHubService(sim, corpus, match_fraction=0.5, seed=11)

    def test_structure_matches_figure_1(self, github):
        spec = MSRPipelineSpec(libraries=("lodash", "react"))
        pipeline, _matrix = build_msr_pipeline(github, spec)
        assert set(pipeline.tasks) == {TASK_SEARCHER, TASK_ANALYZER, TASK_CALCULATOR}
        assert pipeline.source_tasks() == [TASK_SEARCHER]
        assert pipeline.tasks[TASK_CALCULATOR].on_master

    def test_search_expands_to_analysis_jobs(self, github):
        spec = MSRPipelineSpec(libraries=("lodash",), query_min_size_mb=500.0)
        pipeline, _matrix = build_msr_pipeline(github, spec)
        library_job = Job(job_id="lib-0", task=TASK_SEARCHER, payload=("lodash",))
        children = pipeline.on_completion(library_job)
        assert children, "expected at least one matching repository"
        assert all(child.task == TASK_ANALYZER for child in children)
        assert all(child.is_data_bound for child in children)

    def test_analysis_produces_one_record(self, github):
        spec = MSRPipelineSpec(libraries=("lodash",))
        pipeline, _matrix = build_msr_pipeline(github, spec)
        analysis = Job(
            job_id="a-0",
            task=TASK_ANALYZER,
            repo_id="r0",
            size_mb=600.0,
            payload=("lodash", "r0"),
        )
        records = pipeline.on_completion(analysis)
        assert len(records) == 1
        assert records[0].task == TASK_CALCULATOR

    def test_calculator_updates_matrix(self, github):
        spec = MSRPipelineSpec(libraries=("a", "b"))
        pipeline, matrix = build_msr_pipeline(github, spec)
        for library in ("a", "b"):
            record = Job(
                job_id=f"rec-{library}",
                task=TASK_CALCULATOR,
                payload=(library, "r0", True),
            )
            pipeline.on_completion(record)
        assert matrix.counts[("a", "b")] == 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MSRPipelineSpec(libraries=())
        with pytest.raises(ValueError):
            MSRPipelineSpec(libraries=("a", "a"))

    def test_library_stream_shape(self):
        spec = MSRPipelineSpec(libraries=("x", "y", "z"))
        stream = library_stream(spec, mean_interarrival_s=1.0, rng=np.random.default_rng(0))
        assert len(stream) == 3
        assert all(a.job.task == TASK_SEARCHER for a in stream)
        assert all(not a.job.is_data_bound for a in stream)


class TestCooccurrenceMatrix:
    def test_pairs_counted_once_per_repo(self):
        matrix = CooccurrenceMatrix()
        matrix.record("a", "r1", True)
        matrix.record("b", "r1", True)
        matrix.record("b", "r2", True)
        matrix.record("a", "r2", True)
        assert matrix.counts[("a", "b")] == 2

    def test_absent_library_ignored(self):
        matrix = CooccurrenceMatrix()
        matrix.record("a", "r1", True)
        matrix.record("b", "r1", False)
        assert matrix.counts == {}
        assert matrix.records == 2

    def test_duplicate_library_no_self_pair(self):
        matrix = CooccurrenceMatrix()
        matrix.record("a", "r1", True)
        matrix.record("a", "r1", True)
        assert ("a", "a") not in matrix.counts

    def test_top_sorted_by_count(self):
        matrix = CooccurrenceMatrix()
        for repo in ("r1", "r2"):
            matrix.record("a", repo, True)
            matrix.record("b", repo, True)
        matrix.record("c", "r1", True)
        top = matrix.top(2)
        assert top[0][0] == ("a", "b")
        assert top[0][1] == 2
