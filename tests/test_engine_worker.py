"""Unit tests for the worker node runtime."""

import pytest

from conftest import make_spec, make_worker
from repro.engine.messages import Assignment, Hello, JobCompleted, worker_topic
from repro.net.topology import Topology, TopologyConfig
from repro.sim import Simulator
from repro.workload.job import Job


def analysis_job(job_id="j1", repo="r1", size=100.0, compute=0.0):
    return Job(
        job_id=job_id,
        task="RepositoryAnalyzer",
        repo_id=repo,
        size_mb=size,
        base_compute_s=compute,
    )


def zero_topology(sim, names):
    topology = Topology.build(
        sim, [], TopologyConfig(min_latency=0.0, max_latency=0.0, broker_processing=0.0)
    )
    for name in names:
        topology.add_node(name, 0.0)
    return topology


class TestExecution:
    def test_cold_job_downloads_then_processes(self, sim):
        worker = make_worker(sim, make_spec(network=10.0, rw=50.0))
        worker.start()
        worker.enqueue(analysis_job(size=100.0))
        sim.run()
        # 10 s download + 2 s scan.
        assert sim.now == pytest.approx(12.0)
        assert worker.cache.peek("r1")
        assert worker.metrics.total_cache_misses == 1
        assert worker.metrics.total_mb_downloaded == pytest.approx(100.0)

    def test_warm_job_skips_download(self, sim):
        worker = make_worker(sim, make_spec(network=10.0, rw=50.0))
        worker.cache.insert("r1", 100.0)
        worker.start()
        worker.enqueue(analysis_job(size=100.0))
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert worker.metrics.total_cache_hits == 1
        assert worker.metrics.total_mb_downloaded == 0.0

    def test_fifo_order(self, sim):
        worker = make_worker(sim)
        worker.start()
        completed = []
        original = worker.send_to_master

        def spy(message):
            if isinstance(message, JobCompleted):
                completed.append(message.job.job_id)
            original(message)

        worker.send_to_master = spy
        for index in range(3):
            worker.enqueue(analysis_job(job_id=f"j{index}", repo=f"r{index}", size=10.0))
        sim.run()
        assert completed == ["j0", "j1", "j2"]

    def test_data_free_job_costs_compute_only(self, sim):
        worker = make_worker(sim, make_spec(cpu_factor=2.0))
        worker.start()
        worker.enqueue(Job(job_id="s", task="RepositoryAnalyzer", base_compute_s=4.0))
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert worker.metrics.total_cache_misses == 0

    def test_completion_message_published(self, sim):
        topology = zero_topology(sim, ["w1"])
        master_inbox = topology.broker.subscribe("to-master", "master")
        worker = make_worker(sim, topology=topology)
        worker.start()
        worker.enqueue(analysis_job(size=10.0))
        sim.run()
        messages = list(master_inbox.queue.items)
        kinds = [type(m).__name__ for m in messages]
        assert "Hello" in kinds
        assert "JobCompleted" in kinds
        done = [m for m in messages if isinstance(m, JobCompleted)][0]
        assert done.worker == "w1"
        assert done.elapsed_s > 0


class TestCommittedWorkload:
    def test_enqueue_commits_and_completion_releases(self, sim):
        worker = make_worker(sim)
        worker.start()
        worker.enqueue(analysis_job(size=10.0), estimated_cost=42.0)
        assert worker.committed_cost() == pytest.approx(42.0)
        sim.run()
        assert worker.committed_cost() == 0.0

    def test_pending_repos_includes_queued_and_running(self, sim):
        worker = make_worker(sim)
        worker.cache.insert("cached", 5.0)
        worker.start()
        worker.enqueue(analysis_job(job_id="a", repo="run-repo", size=100.0))
        worker.enqueue(analysis_job(job_id="b", repo="queue-repo", size=10.0))
        sim.timeout(1.0).add_callback(
            lambda e: pending.update(worker.pending_repos())
        )
        pending = set()
        sim.run(until=2.0)
        assert pending == {"cached", "run-repo", "queue-repo"}


class TestIdleTracking:
    def test_starts_idle(self, sim):
        worker = make_worker(sim)
        worker.start()
        assert worker.is_idle

    def test_wait_idle_immediate_when_idle(self, sim):
        worker = make_worker(sim)
        worker.start()
        event = worker.wait_idle()
        assert event.triggered

    def test_wait_idle_fires_after_queue_drains(self, sim):
        worker = make_worker(sim, make_spec(network=10.0, rw=50.0))
        worker.start()
        worker.enqueue(analysis_job(size=100.0))
        times = []

        def waiter(sim, worker):
            yield worker.wait_idle()
            times.append(sim.now)

        sim.process(waiter(sim, worker))
        sim.run()
        assert times == [pytest.approx(12.0)]

    def test_busy_while_executing(self, sim):
        worker = make_worker(sim)
        worker.start()
        worker.enqueue(analysis_job(size=100.0))
        observed = []
        sim.timeout(1.0).add_callback(lambda e: observed.append(worker.is_idle))
        sim.run()
        assert observed == [False]


class TestInbox:
    def test_assignment_enqueued_with_default_estimate(self, sim):
        topology = zero_topology(sim, ["w1"])
        worker = make_worker(sim, make_spec(network=10.0, rw=50.0), topology=topology)
        worker.start()
        topology.broker.publish(worker_topic("w1"), Assignment(job=analysis_job(size=100.0)))
        sim.run()
        assert worker.metrics.total_cache_misses == 1
        assert sim.now == pytest.approx(12.0)

    def test_unhandled_message_raises(self, sim):
        topology = zero_topology(sim, ["w1"])
        worker = make_worker(sim, topology=topology)
        worker.start()
        topology.broker.publish(worker_topic("w1"), Hello(worker="stray"))
        with pytest.raises(RuntimeError, match="unhandled message"):
            sim.run()


class TestFailureInjection:
    def test_kill_orphans_jobs_and_reports(self, sim):
        topology = zero_topology(sim, ["w1"])
        master_inbox = topology.broker.subscribe("to-master", "master")
        worker = make_worker(sim, make_spec(network=10.0, rw=50.0), topology=topology)
        worker.start()
        worker.enqueue(analysis_job(job_id="running", size=100.0))
        worker.enqueue(analysis_job(job_id="queued", repo="r2", size=10.0))
        sim.timeout(1.0).add_callback(lambda e: worker.kill())
        sim.run()
        failures = [
            m
            for m in master_inbox.queue.items
            if type(m).__name__ == "WorkerFailure"
        ]
        assert len(failures) == 1
        orphaned_ids = {job.job_id for job in failures[0].orphaned}
        assert orphaned_ids == {"running", "queued"}
        assert not worker.alive

    def test_kill_is_idempotent(self, sim):
        worker = make_worker(sim)
        worker.start()
        worker.kill()
        worker.kill()
        assert not worker.alive

    def test_dead_worker_rejects_enqueue(self, sim):
        worker = make_worker(sim)
        worker.start()
        worker.kill()
        with pytest.raises(RuntimeError, match="dead"):
            worker.enqueue(analysis_job())
