"""Tests for the real-time threaded engine."""

import pytest

from conftest import make_spec
from repro.engine.threaded import ThreadedMaster
from repro.workload.job import Job
from repro.workload.msr import TASK_ANALYZER

#: Fast wall-clock scale for tests: 1 simulated second = 20 microseconds.
SCALE = 2e-5


def jobs_for(specs):
    return [
        Job(job_id=f"j{i}", task=TASK_ANALYZER, repo_id=repo, size_mb=size)
        for i, (repo, size) in enumerate(specs)
    ]


def specs(n=3):
    return [make_spec(f"w{i + 1}") for i in range(n)]


class TestThreadedBidding:
    def test_completes_all_jobs(self):
        master = ThreadedMaster(specs(), scheduler="bidding", time_scale=SCALE)
        result = master.run(jobs_for([(f"r{i}", 10.0) for i in range(20)]))
        assert sum(result.jobs_per_worker.values()) == 20
        assert result.cache_misses == 20  # all distinct, cold

    def test_repeated_repo_mostly_cached(self):
        master = ThreadedMaster(specs(), scheduler="bidding", time_scale=SCALE)
        result = master.run(jobs_for([("hot", 50.0)] * 15))
        # First job downloads; the vast majority of the rest hit the cache.
        assert result.cache_misses < 5
        assert result.cache_hits > 10

    def test_fast_worker_wins_more(self):
        fleet = [
            make_spec("fast", network=40.0, rw=200.0, cpu_factor=4.0),
            make_spec("slow", network=10.0, rw=50.0),
        ]
        master = ThreadedMaster(fleet, scheduler="bidding", time_scale=SCALE)
        result = master.run(jobs_for([(f"r{i}", 50.0) for i in range(20)]))
        assert result.jobs_per_worker["fast"] > result.jobs_per_worker["slow"]

    def test_data_load_matches_misses_for_uniform_sizes(self):
        master = ThreadedMaster(specs(), scheduler="bidding", time_scale=SCALE)
        result = master.run(jobs_for([(f"r{i}", 10.0) for i in range(12)]))
        assert result.data_load_mb == pytest.approx(result.cache_misses * 10.0)


class TestThreadedBaseline:
    def test_completes_all_jobs(self):
        master = ThreadedMaster(specs(), scheduler="baseline", time_scale=SCALE)
        result = master.run(jobs_for([(f"r{i}", 10.0) for i in range(20)]))
        assert sum(result.jobs_per_worker.values()) == 20

    def test_holder_preferred_when_available(self):
        master = ThreadedMaster(specs(2), scheduler="baseline", time_scale=SCALE)
        result = master.run(jobs_for([("hot", 20.0)] * 10))
        # Once one worker holds the clone, it should absorb most repeats.
        assert result.cache_misses <= 3


class TestValidation:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            ThreadedMaster(specs(), scheduler="spark")

    def test_invalid_time_scale_rejected(self):
        with pytest.raises(ValueError):
            ThreadedMaster(specs(), time_scale=0.0)

    def test_empty_job_list_rejected(self):
        master = ThreadedMaster(specs(), time_scale=SCALE)
        with pytest.raises(ValueError):
            master.run([])
